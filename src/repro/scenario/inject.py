"""Arming a :class:`Scenario` on a live harness (DESIGN.md §14).

The :class:`ScenarioInjector` is the scenario twin of
:class:`~repro.runtime.faults.FaultInjector`: it installs the link-model
gate and attacker tap on the medium, and schedules every mobility move
and source emission as a fire-and-forget simulator timer *before* the run
starts — pre-run ``now == 0``, so relative delay equals absolute fire
time and every scenario event occupies a deterministic position in the
event order without consuming medium RNG draws.

Partitioned-run discipline (mirrors the fault injector):

* Mobility moves are *replicated physics* — every shard replays every
  move against its own network replica — but only the shard owning the
  moved node logs the relocation; non-owners call ``overhead`` so the
  merged ``events_processed`` reconciles with the serial run.
* Source emissions arm only on the shard owning the source cell (that is
  where the emitting leader lives), matching serial event counts exactly.
* The link gate and delivery tap install on every shard; gating decisions
  are counter-hashes and each delivery lands on exactly one shard, so
  summed ``faded`` counters and the merged tap equal their serial twins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from ..core.coords import GridCoord
from ..core.program import Message
from .link import LinkGate
from .mobility import Move
from .spec import Scenario, ScenarioReport

if TYPE_CHECKING:  # pragma: no cover
    from ..deployment.topology import RealNetwork
    from ..runtime.binding import Binding
    from ..simulator.engine import Simulator
    from ..simulator.network import WirelessMedium
    from ..simulator.process import ProcessHost


class ScenarioInjector:
    """Arms one scenario on one simulator/medium/stack harness."""

    def __init__(
        self,
        scenario: Scenario,
        network: "RealNetwork",
        binding: "Binding",
        host: "ProcessHost",
        report: ScenarioReport,
        owns_node: Optional[Callable[[int], bool]] = None,
        owns_cell: Optional[Callable[[GridCoord], bool]] = None,
        overhead: Optional[Callable[[], None]] = None,
    ):
        self.scenario = scenario
        self.network = network
        self.binding = binding
        self.host = host
        self.report = report
        self._owns_node = owns_node
        self._owns_cell = owns_cell
        self._overhead = overhead
        self._gate: Optional[LinkGate] = None
        self._medium: "Optional[WirelessMedium]" = None
        # pursuit endpoints, resolved at arm time (the initial election's
        # leaders — identical on every shard replica)
        self.start_node: Optional[int] = None
        self.source_nodes: Tuple[int, ...] = ()

    def arm(self, sim: "Simulator", medium: "WirelessMedium") -> None:
        """Install gates/taps and schedule every timed event; call after
        processes boot, before the run."""
        self._medium = medium
        scn = self.scenario
        if scn.link is not None:
            gate = scn.link.build_gate(self.network)
            if gate is not None:
                medium.link_gate = gate
                self._gate = gate
        if scn.attacker is not None:
            medium.tap_kinds = frozenset(scn.attacker.listen_kinds)
            medium.delivery_log = []
            leaders = self.binding.leaders
            self.start_node = leaders.get(scn.attacker.start_cell)
            self.source_nodes = tuple(
                sorted(
                    {
                        leaders[c]
                        for c in scn.attacker.source_cells
                        if leaders.get(c) is not None
                    }
                )
            )
        if scn.mobility:
            for move in scn.mobility.moves:
                # pre-run now == 0, so relative delay == absolute fire time
                sim.schedule_fire_and_forget(move.time, self._fire_move, move)
        if scn.sources is not None:
            for time, cell, k in scn.sources.events():
                if self._owns_cell is None or self._owns_cell(cell):
                    sim.schedule_fire_and_forget(time, self._fire_source, cell, k)

    # -- event execution ---------------------------------------------------------

    def _fire_move(self, move: Move) -> None:
        owned = self._owns_node is None or self._owns_node(move.node)
        if not owned and self._overhead is not None:
            # replicated (non-owned) firing: mutate the replica's physics,
            # skip the report, count partition bookkeeping
            self._overhead()
        position = (
            move.position
            if move.position is not None
            else self.network.cells.center(move.cell)
        )
        old_cell, new_cell = self.network.move_node(move.node, position)
        # the node's cached route toward its (possibly new) leader is
        # stale; healing rebuilds it on demand via the repair path
        self.binding.toward_leader[move.node] = None
        if owned:
            self.report.relocations.append((move.time, move.node, old_cell, new_cell))

    def _fire_source(self, cell: GridCoord, k: int) -> None:
        scn = self.scenario
        assert scn.sources is not None
        leader = self.binding.leaders.get(cell)
        proc = None if leader is None else self.host.processes.get(leader)
        if leader is None or proc is None or not self.network.node(leader).alive:
            self.report.source_skipped += 1
            return
        inner = Message(
            kind=scn.sources.kind,
            sender=cell,
            payload=(cell, k),
            size_units=scn.sources.size_units,
        )
        proc.originate(scn.sources.dst_cell, inner, size_units=scn.sources.size_units)
        self.report.source_emissions += 1

    # -- post-run ----------------------------------------------------------------

    def delivery_log(self) -> List[Tuple[float, int, int]]:
        """The tap in canonical ``(time, src, receiver)`` order."""
        if self._medium is None or self._medium.delivery_log is None:
            return []
        return sorted(self._medium.delivery_log)

    def finalize(self, pursue: bool = True) -> None:
        """Fold gate counters into the report; optionally run the pursuit.

        Partition shards call this with ``pursue=False`` — the pursuit
        runs once in the parent over the merged tap.
        """
        if self._gate is not None:
            self.report.link_faded = self._gate.faded
        scn = self.scenario
        if pursue and scn.attacker is not None:
            self.report.attacker = scn.attacker.pursue(
                self.delivery_log(), self.start_node, self.source_nodes, self.network
            )
