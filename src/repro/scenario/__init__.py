"""Pluggable scenario models: radio, mobility, adversary, sources.

The seed reproduction exercises the paper's runtime over a unit-disk,
static, benign world.  :mod:`repro.scenario` opens the scenario axis: a
declarative :class:`Scenario` composes a radio :class:`LinkModel`
(:class:`UnitDisk`, :class:`LogNormalShadowing`, :class:`PerPairFading`),
a :class:`MobilityModel` of scheduled node relocations, an eavesdropping
pursuit :class:`Attacker` (source-location privacy), and a duty-cycled
:class:`SourcePeriodModel` — all seed-deterministic, fingerprinted, and
dict-round-trippable, so scenarios ride sweeps, partition job blobs, and
serve configs exactly like ``FaultPlan``\\ s do.  See DESIGN.md §14 for
the interfaces, the RNG stream discipline, and the fingerprint contract.
"""

from .attacker import Attacker, AttackerOutcome
from .inject import ScenarioInjector
from .link import (
    LinkGate,
    LinkModel,
    LogNormalShadowing,
    PerPairFading,
    UnitDisk,
    link_model_from_dict,
)
from .mobility import MobilityModel, Move, plan_cell_hops
from .selfcheck import self_check
from .sources import SourcePeriodModel
from .spec import Scenario, ScenarioReport, merge_scenario_reports

__all__ = [
    "Attacker",
    "AttackerOutcome",
    "LinkGate",
    "LinkModel",
    "LogNormalShadowing",
    "MobilityModel",
    "Move",
    "PerPairFading",
    "Scenario",
    "ScenarioInjector",
    "ScenarioReport",
    "SourcePeriodModel",
    "UnitDisk",
    "link_model_from_dict",
    "merge_scenario_reports",
    "plan_cell_hops",
    "self_check",
]
