"""Node mobility: scheduled re-homing between cells (DESIGN.md §14).

The paper's world is static; a mature WSN harness moves nodes.  A
:class:`MobilityModel` is a declarative, fingerprinted schedule of
:class:`Move` events — each re-homes one node to an explicit waypoint or
to the centre of a target cell at an exact virtual time.  Moves are armed
as fire-and-forget simulator timers before the run starts (the
:class:`~repro.runtime.faults.FaultPlan` discipline), so they occupy
deterministic event-order positions and never consume medium RNG draws.

A move is *physics*: :meth:`RealNetwork.move_node` rewrites the node's
position, cell membership, and unit-disk adjacency, and bumps the
liveness generation so every cached view (alive neighbours, cell members,
repair throttles, link-gate probabilities) rebuilds lazily.  The runtime
consequences then flow through the PR 5 self-healing path — a leader that
wandered off stops heartbeating in its old cell, the watchers time out,
the deterministic successor takes over, and the gradient repairs — which
is exactly why mobility runs force a :class:`HealingConfig` on.

In a partitioned run every shard replays every move against its replica
(positions are replicated physics), but only the shard owning the moved
node logs the relocation; the rest count partition overhead so the merged
event count reconciles with the serial run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.coords import GridCoord
from ..simulator.trace import stable_digest


@dataclass(frozen=True)
class Move:
    """One scheduled relocation.

    ``cell`` re-homes the node to that cell's centre; an explicit
    ``position`` waypoint wins if both are given (the destination cell is
    then derived from the position).
    """

    time: float
    node: int
    cell: Optional[GridCoord] = None
    position: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"move time must be >= 0, got {self.time}")
        if self.cell is None and self.position is None:
            raise ValueError("a Move needs cell= or position=")
        if self.cell is not None:
            object.__setattr__(self, "cell", (int(self.cell[0]), int(self.cell[1])))
        if self.position is not None:
            object.__setattr__(
                self, "position", (float(self.position[0]), float(self.position[1]))
            )


@dataclass(frozen=True)
class MobilityModel:
    """An ordered, immutable schedule of :class:`Move`\\ s."""

    moves: Tuple[Move, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "moves", tuple(sorted(self.moves, key=lambda m: (m.time, m.node)))
        )

    def __bool__(self) -> bool:
        return bool(self.moves)

    def fingerprint(self) -> str:
        """Stable digest of the schedule (folds into run fingerprints)."""
        return stable_digest(tuple(dataclasses.astuple(m) for m in self.moves))

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Plain-dict form (sweep params / JSON grids)."""
        out = []
        for m in self.moves:
            d: Dict[str, Any] = {"time": m.time, "node": m.node}
            if m.cell is not None:
                d["cell"] = list(m.cell)
            if m.position is not None:
                d["position"] = list(m.position)
            out.append(d)
        return out

    @classmethod
    def from_dicts(cls, specs: Iterable[Dict[str, Any]]) -> "MobilityModel":
        """Inverse of :meth:`to_dicts` (tolerates lists where tuples go)."""
        moves = []
        for spec in specs:
            cell = spec.get("cell")
            position = spec.get("position")
            moves.append(
                Move(
                    time=float(spec["time"]),
                    node=int(spec["node"]),
                    cell=None if cell is None else (int(cell[0]), int(cell[1])),
                    position=None
                    if position is None
                    else (float(position[0]), float(position[1])),
                )
            )
        return cls(moves=tuple(moves))


def plan_cell_hops(
    nodes: Sequence[int],
    cells: Sequence[GridCoord],
    hops: int,
    at: float = 0.5,
    spacing: float = 0.05,
    seed: int = 0,
) -> MobilityModel:
    """A seeded plan hopping ``hops`` distinct nodes to random cells.

    Movers are drawn without replacement from ``sorted(nodes)`` and
    destinations with replacement from ``sorted(cells)`` using
    ``np.random.default_rng(seed)``, so the plan is a pure function of its
    arguments.  Hops land at ``at, at + spacing, ...``.
    """
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    pool = sorted(set(nodes))
    targets = sorted(set(cells))
    if hops > len(pool):
        raise ValueError(f"cannot move {hops} distinct nodes out of {len(pool)}")
    if not targets:
        raise ValueError("plan_cell_hops needs a non-empty cells=")
    rng = np.random.default_rng(seed)
    movers = [pool[i] for i in rng.choice(len(pool), size=hops, replace=False)]
    dests = [targets[int(i)] for i in rng.integers(0, len(targets), size=hops)]
    moves = tuple(
        Move(time=at + i * spacing, node=nid, cell=cell)
        for i, (nid, cell) in enumerate(zip(movers, dests))
    )
    return MobilityModel(moves=moves)
