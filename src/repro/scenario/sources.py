"""Duty-cycled traffic sources (DESIGN.md §14).

The paper's applications are query-driven: the root asks, the quad-tree
answers once.  Long-lived deployments instead have *sources* — cells
whose leaders emit periodic field updates (MBradbury's
``SourcePeriodModel``).  A :class:`SourcePeriodModel` declares that duty
cycle: each listed cell's current leader originates one transport
envelope per period toward ``dst_cell``, resolved at fire time so the
traffic follows failovers, mobility re-homing, and takeovers.

Emissions are armed as fire-and-forget timers before the run starts.  In
a partitioned run each emission timer is armed only on the shard owning
the source cell (the leader lives there, and transmissions must happen on
the transmitter's owning shard), so event counts match the serial run
one-for-one with no overhead accounting.  A fire whose cell currently has
no live, bound leader is counted as ``source_skipped`` rather than
silently dropped — duty-cycle accounting is part of the scenario report
and therefore of the run fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

from ..core.coords import GridCoord
from ..simulator.trace import stable_digest


@dataclass(frozen=True)
class SourcePeriodModel:
    """Periodic field-update emissions from the leaders of ``cells``.

    Each cell emits ``count`` updates at ``first, first + period, ...``,
    addressed to ``dst_cell`` (typically the quad-tree root).  The inner
    message uses ``kind`` with payload ``(cell, k)`` so applications can
    recognize and k-index the updates.
    """

    cells: Tuple[GridCoord, ...]
    period: float
    first: float = 0.0
    count: int = 1
    dst_cell: GridCoord = (0, 0)
    size_units: float = 1.0
    kind: str = "field-update"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "cells", tuple((int(c[0]), int(c[1])) for c in self.cells)
        )
        object.__setattr__(
            self, "dst_cell", (int(self.dst_cell[0]), int(self.dst_cell[1]))
        )
        if not self.cells:
            raise ValueError("SourcePeriodModel needs at least one source cell")
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.first < 0:
            raise ValueError(f"first must be >= 0, got {self.first}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.size_units <= 0:
            raise ValueError(f"size_units must be > 0, got {self.size_units}")

    def events(self) -> Iterator[Tuple[float, GridCoord, int]]:
        """All ``(time, cell, k)`` emissions in deterministic arming order."""
        for time, cell, k in sorted(
            (self.first + k * self.period, cell, k)
            for cell in self.cells
            for k in range(self.count)
        ):
            yield time, cell, k

    def fingerprint(self) -> str:
        return stable_digest(
            ("sources", self.cells, self.period, self.first, self.count,
             self.dst_cell, self.size_units, self.kind)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cells": [list(c) for c in self.cells],
            "period": self.period,
            "first": self.first,
            "count": self.count,
            "dst_cell": list(self.dst_cell),
            "size_units": self.size_units,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "SourcePeriodModel":
        cells: List[Tuple[int, int]] = [tuple(c) for c in spec["cells"]]
        return cls(
            cells=tuple(cells),
            period=float(spec["period"]),
            first=float(spec.get("first", 0.0)),
            count=int(spec.get("count", 1)),
            dst_cell=tuple(spec.get("dst_cell", (0, 0))),
            size_units=float(spec.get("size_units", 1.0)),
            kind=str(spec.get("kind", "field-update")),
        )
