"""Acceptance matrix for the scenario subsystem (DESIGN.md §14).

Run by the ``scenario`` CI job via ``python -m repro scenario
--self-check``.  Everything here pins the subsystem's reproducibility
contract — **a seeded scenario run fingerprints byte-identically in
every execution mode** — plus the behavioural properties around it:

* selecting :class:`UnitDisk` explicitly is byte-identical to running
  with no scenario at all (the zero-cost default);
* each non-trivial link model reruns byte-identically, actually fades
  packets, and perturbs the run relative to the unit-disk baseline;
* the full composition — shadowing + mobility + attacker + sources +
  an armed :class:`~repro.runtime.faults.FaultPlan` — fingerprints
  identically across the legacy serial path, K=1 and K=4 partitioned
  execution, with the wire codec on and off;
* the attacker's capture metric is deterministic and survives the
  partitioned tap merge; mobility relocations are all logged; source
  duty-cycle accounting is exact;
* a scenario dict round-trips through JSON with the same fingerprint
  and drives the same run as the object form;
* declarative-model validation rejects malformed parameters loudly.
"""

from __future__ import annotations

import json
from typing import Any, Callable, List, Optional

import numpy as np

from .attacker import Attacker
from .link import LogNormalShadowing, PerPairFading, UnitDisk, link_model_from_dict
from .mobility import Move, plan_cell_hops
from .sources import SourcePeriodModel
from .spec import Scenario

#: small-but-real deployment: 4x4 cells, ~140 nodes (the faults
#: self-check scale, cheap enough to run the full execution-mode matrix)
SIDE = 4
SEED = 11


def _count_all(cell: Any) -> bool:
    """Module-level predicate: the program spec is pickled into shards."""
    return True


def _build(seed: int, side: int = SIDE, n_random: int = 140):
    from ..deployment import (
        CellGrid,
        Terrain,
        build_network,
        ensure_coverage,
        uniform_random,
    )

    terrain = Terrain(100.0)
    cells = CellGrid(terrain, side)
    rng = np.random.default_rng(seed)
    positions = ensure_coverage(uniform_random(n_random, terrain, rng), cells, rng)
    return build_network(positions, cells, tx_range=cells.cell_side * 2.3)


def demo_scenario(seed: int = SEED, side: int = SIDE) -> Scenario:
    """The reference full-composition scenario (also the CLI demo)."""
    net = _build(seed, side)
    cells = [(x, y) for x in range(side) for y in range(side)]
    return Scenario(
        link=LogNormalShadowing(sigma=3.0, seed=seed),
        mobility=plan_cell_hops(
            sorted(net.node_ids()), cells, hops=5, at=0.6, spacing=0.1, seed=seed
        ),
        attacker=Attacker(start_cell=(0, 0), source_cells=((side - 1, side - 1),)),
        sources=SourcePeriodModel(
            cells=((side - 1, side - 1), (1, 2)),
            period=1.0,
            first=0.4,
            count=2,
            dst_cell=(0, 0),
        ),
    )


def _run(
    scenario: Any,
    partitions: int = 0,
    procs: int = 1,
    wire: bool = False,
    plan: Any = None,
    seed: int = SEED,
):
    """One seeded run on a fresh stack; ``partitions=0`` = legacy path."""
    from ..core import CountAggregation, VirtualArchitecture
    from ..partition.runner import run_partitioned_application
    from ..runtime import deploy

    stack = deploy(_build(seed))
    spec = VirtualArchitecture(SIDE).synthesize(CountAggregation(_count_all))
    if partitions == 0:
        return stack.run_application(
            spec,
            rng=np.random.default_rng(seed + 1),
            reliable=True,
            max_retries=8,
            wire_format=wire,
            fault_plan=plan,
            scenario=scenario,
        )
    return run_partitioned_application(
        stack,
        spec,
        partitions=partitions,
        procs=procs,
        rng=np.random.default_rng(seed + 1),
        reliable=True,
        max_retries=8,
        wire_format=wire,
        fault_plan=plan,
        scenario=scenario,
        wall_timeout_s=120.0,
    )


def _kill_plan(cell):
    from ..runtime.faults import FaultEvent, FaultPlan

    return FaultPlan(events=(FaultEvent(time=0.7, action="kill_leader", cell=cell),))


def _raises(thunk: Callable[[], Any]) -> bool:
    try:
        thunk()
    except ValueError:
        return True
    return False


def self_check(verbose: bool = True) -> bool:
    """The acceptance matrix; returns False (after running everything)
    if any check failed."""

    def say(msg: str) -> None:
        if verbose:
            print(msg)

    failures: List[str] = []

    def check(name: str, cond: bool) -> None:
        mark = "ok" if cond else "FAIL"
        say(f"  [{mark}] {name}")
        if not cond:
            failures.append(name)

    say("scenario: UnitDisk explicitly selected == no scenario at all")
    base = _run(None)
    named = _run(Scenario(link=UnitDisk()))
    check(
        "UnitDisk scenario is byte-identical to no scenario",
        named.fingerprint() == base.fingerprint(),
    )
    check("trivial scenario attaches no report", named.scenario_report is None)

    say("scenario: link-model determinism and effect")
    for model in (LogNormalShadowing(sigma=3.0, seed=7), PerPairFading(depth=0.7, seed=7)):
        first = _run(Scenario(link=model))
        again = _run(Scenario(link=model))
        check(
            f"{model.kind} reruns byte-identically",
            first.fingerprint() == again.fingerprint(),
        )
        report = first.scenario_report
        check(
            f"{model.kind} actually fades packets",
            report is not None and report.link_faded > 0,
        )
        check(
            f"{model.kind} perturbs the unit-disk baseline",
            first.fingerprint() != base.fingerprint(),
        )

    say("scenario: full composition across execution modes (with faults)")
    scn = demo_scenario()
    plan = _kill_plan((1, 1))
    serial = {w: _run(scn, plan=plan, wire=w) for w in (False, True)}
    via_k1 = _run(scn, partitions=1, plan=plan)
    check(
        "K=1 partition entry == legacy serial",
        via_k1.fingerprint() == serial[False].fingerprint(),
    )
    k4_plain = _run(scn, partitions=4, procs=1, plan=plan)
    check(
        "K=4 (multiplexed shards) == serial",
        k4_plain.fingerprint() == serial[False].fingerprint(),
    )
    k4_wire = _run(scn, partitions=4, procs=4, plan=plan, wire=True)
    check(
        "K=4 (worker processes, wire codec) == serial wire run",
        k4_wire.fingerprint() == serial[True].fingerprint(),
    )

    say("scenario: attacker capture metric")
    rep = serial[False].scenario_report
    k4_rep = k4_plain.scenario_report
    check("pursuit outcome recorded", rep is not None and rep.attacker is not None)
    check(
        "pursuit outcome identical serial vs partitioned",
        rep is not None
        and k4_rep is not None
        and rep.attacker is not None
        and k4_rep.attacker is not None
        and rep.attacker.as_tuple() == k4_rep.attacker.as_tuple(),
    )
    check(
        "capture metric surfaces in flat metrics",
        rep is not None and "attacker_moves" in rep.metrics(),
    )

    say("scenario: mobility and source accounting")
    check(
        "every mobility move logged a relocation",
        rep is not None
        and scn.mobility is not None
        and len(rep.relocations) == len(scn.mobility.moves),
    )
    expected_fires = len(scn.sources.cells) * scn.sources.count
    check(
        "source duty cycle fully accounted",
        rep is not None
        and rep.source_emissions + rep.source_skipped == expected_fires
        and rep.source_emissions >= 1,
    )

    say("scenario: declarative round-trips")
    wire_spec = json.loads(json.dumps(scn.to_dict()))
    check(
        "dict form round-trips through JSON with the same fingerprint",
        Scenario.from_dict(wire_spec).fingerprint() == scn.fingerprint(),
    )
    via_dict = _run(wire_spec, plan=plan)
    check(
        "dict-form scenario drives the identical run",
        via_dict.fingerprint() == serial[False].fingerprint(),
    )

    say("scenario: parameter validation")
    check("negative sigma rejected", _raises(lambda: LogNormalShadowing(sigma=-1.0)))
    check("fading depth > 1 rejected", _raises(lambda: PerPairFading(depth=1.5)))
    check(
        "unknown link kind rejected",
        _raises(lambda: link_model_from_dict({"kind": "carrier-pigeon"})),
    )
    check("negative move time rejected", _raises(lambda: Move(time=-1.0, node=0, cell=(0, 0))))
    check(
        "empty source-cell list rejected",
        _raises(lambda: SourcePeriodModel(cells=(), period=1.0)),
    )
    check(
        "attacker without sources rejected",
        _raises(lambda: Attacker(start_cell=(0, 0), source_cells=())),
    )

    if failures:
        say(f"scenario self-check: {len(failures)} FAILED: {failures}")
        return False
    say("scenario self-check: all checks passed")
    return True
