"""Pluggable radio link models for the wireless medium (DESIGN.md §14).

The seed simulator's medium is a unit disk: every alive neighbour within
range hears every packet, minus the independent ``loss_rate`` coin.  Real
testbeds (WiFly, Watteyne et al.) show something harsher: per-link,
*asymmetric* reception probabilities shaped by path loss and log-normal
shadowing.  This module supplies that as an optional admission gate on
:class:`~repro.simulator.network.WirelessMedium` — a :class:`LinkModel`
builds a :class:`LinkGate` that decides, per directed link and per packet,
whether the receiver hears the frame at all.

Determinism contract (the part that keeps serial == partitioned):

* Per-packet admission NEVER consumes the medium RNG — that would shift
  the loss/jitter stream of every other transmission.  Decisions derive
  from (a) link parameters drawn **once** at gate-build time from the
  model's own declarative ``seed`` (identical on every shard replica,
  iterated in sorted adjacency order), and (b) a splitmix64-style counter
  hash per directed link, so the *n*-th packet on link ``(u, v)`` gets
  the same verdict in every execution mode.
* A node's transmissions happen only on its owning shard, so the per-link
  packet counters observe identical sequences serial vs partitioned.
* :class:`UnitDisk` builds no gate: selecting it explicitly is
  byte-identical to running without a scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..simulator.trace import stable_digest

if TYPE_CHECKING:  # pragma: no cover
    from ..deployment.topology import RealNetwork

# hash-domain tags so admission draws and fallback shadow draws for the
# same link never collide
_ADMIT_TAG = 0xAD317
_SHADOW_TAG = 0x5AD0


def stable_unit(*parts: int) -> float:
    """Deterministic hash of integers to ``[0, 1)`` (splitmix64-style).

    The scenario-layer twin of the transport's retry-jitter hash: seeded
    randomness that never touches a shared RNG stream.
    """
    mask = (1 << 64) - 1
    x = 0x9E3779B97F4A7C15
    for p in parts:
        x = (x ^ (p & mask)) & mask
        x = (x * 0xBF58476D1CE4E5B9) & mask
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & mask
        x ^= x >> 31
    return (x >> 11) / float(1 << 53)


def _hash_normal(seed: int, u: int, v: int) -> float:
    """Standard-normal draw from the link identity (Box–Muller on hashes).

    Used for links that appear *after* gate build (mobility created them),
    so every shard replica agrees on the late link's shadowing term
    without having consumed it from the build-time stream.
    """
    u1 = max(stable_unit(seed, _SHADOW_TAG, u, v, 1), 1e-12)
    u2 = stable_unit(seed, _SHADOW_TAG, u, v, 2)
    return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)


def _normalized_distance(net: "RealNetwork", u: int, v: int) -> float:
    """Distance between ``u`` and ``v`` as a fraction of their mutual reach."""
    a, b = net.node(u), net.node(v)
    d = math.hypot(a.position[0] - b.position[0], a.position[1] - b.position[1])
    reach = min(a.tx_range, b.tx_range)
    return d / reach if reach > 0 else 1.0


class LinkGate:
    """Per-directed-link packet admission, installed on the medium.

    ``admit(src, dst)`` is called once per potential reception, *after*
    liveness and blocked-link filtering and *before* any loss/jitter RNG
    draw.  Reception probabilities are cached per link and invalidated by
    the network's liveness generation (mobility bumps it on every move, so
    distance-dependent models track node positions).
    """

    __slots__ = ("_net", "_seed", "_prob_fn", "_counts", "_pcache", "_gen", "faded")

    def __init__(
        self,
        network: "RealNetwork",
        seed: int,
        prob_fn: Callable[[int, int], float],
    ):
        self._net = network
        self._seed = seed
        self._prob_fn = prob_fn
        self._counts: Dict[Tuple[int, int], int] = {}
        self._pcache: Dict[Tuple[int, int], float] = {}
        self._gen = -1
        #: packets suppressed by the model (the scenario report's counter)
        self.faded = 0

    def admit(self, src: int, dst: int) -> bool:
        """Does packet number *n* on directed link ``(src, dst)`` get through?"""
        key = (src, dst)
        n = self._counts.get(key, 0)
        self._counts[key] = n + 1
        gen = self._net.liveness_generation
        if gen != self._gen:
            self._pcache.clear()
            self._gen = gen
        p = self._pcache.get(key)
        if p is None:
            p = self._prob_fn(src, dst)
            self._pcache[key] = p
        if p >= 1.0:
            return True
        if stable_unit(self._seed, _ADMIT_TAG, src, dst, n) < p:
            return True
        self.faded += 1
        return False


class LinkModel:
    """Interface of a declarative radio model.

    Subclasses are frozen dataclasses: dict-round-trippable, fingerprinted,
    and pure functions of their fields (the ``seed`` field included), so a
    model pickled into a partition shard builds the identical gate there.
    """

    kind: str = "abstract"

    def build_gate(self, network: "RealNetwork") -> Optional[LinkGate]:
        """Build the per-run admission gate (None = no gating needed)."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable digest of the model's declarative identity."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (sweep params / JSON grids)."""
        raise NotImplementedError


@dataclass(frozen=True)
class UnitDisk(LinkModel):
    """Today's physics, named: every in-range neighbour hears everything.

    Builds no gate, so selecting it explicitly is byte-identical to not
    passing a scenario at all (the acceptance criterion pinning the
    scenario layer's zero-cost default).
    """

    kind: str = "unit_disk"

    def build_gate(self, network: "RealNetwork") -> Optional[LinkGate]:
        return None

    def fingerprint(self) -> str:
        return stable_digest(("link", self.kind))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind}


@dataclass(frozen=True)
class LogNormalShadowing(LinkModel):
    """Log-normal shadowing over a log-distance path-loss margin.

    Each *directed* link gets a shadowing term ``N(0, sigma)`` dB drawn
    once at build time from ``default_rng(seed)`` in sorted adjacency
    order — directed, so the u→v and v→u draws differ: this is what makes
    links *asymmetric*.  Reception probability is a logistic squash of the
    fade margin::

        x      = distance / mutual_reach          (0 < x <= 1 on a link)
        margin = -10·ple·log10(x) + shadow        (dB above sensitivity)
        p      = 1 / (1 + exp(-margin / softness))

    At the edge of range (``x = 1``) the margin is the shadow alone, so
    ``p ≈ 0.5`` links appear exactly where testbeds see their "gray
    region"; close links saturate to ``p ≈ 1``.
    """

    sigma: float = 4.0
    path_loss_exponent: float = 2.0
    softness: float = 2.0
    seed: int = 0
    kind: str = "log_normal_shadowing"

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if self.path_loss_exponent <= 0:
            raise ValueError(
                f"path_loss_exponent must be > 0, got {self.path_loss_exponent}"
            )
        if self.softness <= 0:
            raise ValueError(f"softness must be > 0, got {self.softness}")

    def build_gate(self, network: "RealNetwork") -> Optional[LinkGate]:
        rng = np.random.default_rng(self.seed)
        shadows: Dict[Tuple[int, int], float] = {}
        for u in network.node_ids():
            for v in network.neighbors(u, alive_only=False):
                shadows[(u, v)] = float(rng.normal(0.0, self.sigma))
        sigma, ple, softness, seed = (
            self.sigma, self.path_loss_exponent, self.softness, self.seed,
        )

        def prob(u: int, v: int) -> float:
            shadow = shadows.get((u, v))
            if shadow is None:
                # link born mid-run (mobility): hash-derived shadow, cached
                shadow = sigma * _hash_normal(seed, u, v)
                shadows[(u, v)] = shadow
            x = max(_normalized_distance(network, u, v), 1e-9)
            margin = -10.0 * ple * math.log10(x) + shadow
            t = min(max(margin / softness, -60.0), 60.0)
            return 1.0 / (1.0 + math.exp(-t))

        return LinkGate(network, self.seed, prob)

    def fingerprint(self) -> str:
        return stable_digest(
            ("link", self.kind, self.sigma, self.path_loss_exponent,
             self.softness, self.seed)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "sigma": self.sigma,
            "path_loss_exponent": self.path_loss_exponent,
            "softness": self.softness,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class PerPairFading(LinkModel):
    """Deterministic distance-proportional fading — no RNG anywhere.

    Packet *n* on link ``(u, v)`` is delivered iff ``hash(seed, u, v, n)
    >= depth · x`` with ``x`` the normalized distance, i.e. reception
    probability ``1 - depth·x``: adjacent nodes barely fade, edge-of-range
    links lose up to ``depth`` of their traffic.  Every draw is a pure
    hash, so the model is reproducible even across machines with different
    numpy builds.
    """

    depth: float = 0.5
    seed: int = 0
    kind: str = "per_pair_fading"

    def __post_init__(self) -> None:
        if not 0.0 <= self.depth <= 1.0:
            raise ValueError(f"depth must be in [0, 1], got {self.depth}")

    def build_gate(self, network: "RealNetwork") -> Optional[LinkGate]:
        depth = self.depth

        def prob(u: int, v: int) -> float:
            x = min(max(_normalized_distance(network, u, v), 0.0), 1.0)
            return 1.0 - depth * x

        return LinkGate(network, self.seed, prob)

    def fingerprint(self) -> str:
        return stable_digest(("link", self.kind, self.depth, self.seed))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "depth": self.depth, "seed": self.seed}


#: kind tag -> model class, for dict round-trips
LINK_MODEL_KINDS: Dict[str, type] = {
    UnitDisk.kind: UnitDisk,
    LogNormalShadowing.kind: LogNormalShadowing,
    PerPairFading.kind: PerPairFading,
}


def link_model_from_dict(spec: Dict[str, Any]) -> LinkModel:
    """Inverse of every model's ``to_dict`` (dispatch on ``kind``)."""
    kind = spec.get("kind")
    cls = LINK_MODEL_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown link model kind {kind!r}; expected one of "
            f"{sorted(LINK_MODEL_KINDS)}"
        )
    fields = {k: v for k, v in spec.items() if k != "kind"}
    return cls(**fields)
