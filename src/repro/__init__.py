"""repro — reproduction of *Algorithm Design and Synthesis for Wireless
Sensor Networks* (Bakshi & Prasanna, ICPP 2004).

The library implements the paper's full methodology stack:

* :mod:`repro.core` — the **virtual architecture** (oriented-grid network
  model, hierarchical group middleware, programming primitives, uniform
  cost model), the task-graph application model, constraint-checked
  mapping, program synthesis to reactive rule programs (Figure 4), a
  design-time executor, and closed-form performance analysis.
* :mod:`repro.deployment` — the physical substrate: terrain and cells,
  deployment generators, sensor nodes with batteries, the unit-disk real
  network graph.
* :mod:`repro.simulator` — a deterministic discrete-event engine with a
  wireless medium (broadcast, loss, jitter) and reactive node processes.
* :mod:`repro.runtime` — the Section 5 protocols (cell-based topology
  emulation, closest-to-centre process binding), grid transport, and the
  deployed full stack executing the same synthesized programs physically.
* :mod:`repro.apps` — the case study: homogeneous-region identification
  and labeling for topographic querying, synthetic phenomenon fields, the
  centralized baseline, and distributed-storage queries.

Quickstart::

    from repro import VirtualArchitecture, TopographicQueryApp
    from repro.apps import GaussianBlobField

    va = VirtualArchitecture(side=16)
    app = TopographicQueryApp(va, GaussianBlobField([(0.3, 0.3, 0.1, 1.0)]), 0.5)
    report = app.run_virtual()
    print(report.regions, report.performance.latency)
"""

from .core import (
    Aggregation,
    CountAggregation,
    EnergyLedger,
    HierarchicalGroups,
    MaxAggregation,
    OrientedGrid,
    SumAggregation,
    SynthesizedProgram,
    UniformCostModel,
    VirtualArchitecture,
    build_quadtree,
    execute_round,
    recursive_quadrant_mapping,
    synthesize_quadtree_program,
)
from .apps import RegionAggregation, RegionSummary, TopographicQueryApp
from .deployment import CellGrid, RealNetwork, SensorNode, Terrain, build_network
from .runtime import DeployedStack, deploy

__version__ = "1.0.0"

__all__ = [
    "Aggregation",
    "CellGrid",
    "CountAggregation",
    "DeployedStack",
    "EnergyLedger",
    "HierarchicalGroups",
    "MaxAggregation",
    "OrientedGrid",
    "RealNetwork",
    "RegionAggregation",
    "RegionSummary",
    "SensorNode",
    "SumAggregation",
    "SynthesizedProgram",
    "Terrain",
    "TopographicQueryApp",
    "UniformCostModel",
    "VirtualArchitecture",
    "__version__",
    "build_network",
    "build_quadtree",
    "deploy",
    "execute_round",
    "recursive_quadrant_mapping",
    "synthesize_quadtree_program",
]
