"""Per-node reactive processes.

Each physical node runs a :class:`Process`: a reactive object with
``on_start`` / ``on_packet`` / ``on_timer`` hooks, mirroring the
event-driven programming model the paper synthesizes to (Section 4.3).
The :class:`ProcessHost` owns the processes of a whole network, wires them
to the :class:`~repro.simulator.network.WirelessMedium`, and provides the
timer facility.

Protocol implementations (``repro.runtime``) subclass :class:`Process`;
the full-stack executor additionally hosts the *synthesized rule programs*
inside a process on elected leader nodes.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Hashable, Iterable, Optional

from .engine import Simulator
from .network import Packet, WirelessMedium


class Process(abc.ABC):
    """Base class for node-resident protocol logic.

    Subclasses implement the reactive hooks; the host injects ``sim``,
    ``medium``, and ``node_id`` before :meth:`on_start` runs, so hooks can
    freely use the transmission and timer helpers.
    """

    sim: Simulator
    medium: WirelessMedium
    node_id: int

    def __init__(self) -> None:
        # tag -> stamp of the currently armed timer; stamps come from a
        # per-process monotone counter so a stale queued event can never
        # alias a later re-arm of the same tag
        self._armed_timers: Dict[Hashable, int] = {}
        self._timer_stamp = 0

    # -- lifecycle hooks -----------------------------------------------------

    def on_start(self) -> None:
        """Called once when the host starts the simulation."""

    def on_packet(self, packet: Packet) -> None:
        """Called on every packet arrival addressed to (or overheard by)
        this node."""

    def on_timer(self, tag: Any) -> None:
        """Called when a timer set via :meth:`set_timer` expires."""

    # -- helpers ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    @property
    def alive(self) -> bool:
        """Whether the underlying physical node is alive."""
        return self.medium.network.node(self.node_id).alive

    def broadcast(self, kind: str, payload: Any, size_units: float = 1.0) -> int:
        """Radio-broadcast to all one-hop neighbours."""
        return self.medium.broadcast(self.node_id, kind, payload, size_units)

    def unicast(
        self, dst: int, kind: str, payload: Any, size_units: float = 1.0
    ) -> bool:
        """Addressed transmission to one neighbour."""
        return self.medium.unicast(self.node_id, dst, kind, payload, size_units)

    def set_timer(self, delay: float, tag: Hashable = None) -> Hashable:
        """Schedule :meth:`on_timer` after ``delay``; returns ``tag``.

        Timers are tag-indexed: at most one timer per ``tag`` is armed, and
        re-arming a tag supersedes (cancels) the previous timer.  Cancel
        with :meth:`cancel_timer` / :meth:`cancel_timers`.  The facility is
        handle-free — arming, firing, and cancelling are dictionary
        operations on a generation-stamped registry, with no per-timer
        :class:`~repro.simulator.engine.EventHandle` allocation or prune
        scans (tags must be hashable).
        """
        armed = self._armed_timers
        if tag in armed:
            # the superseded timer's heap entry is now dead weight
            self.sim.discount_cancelled()
        self._timer_stamp += 1
        stamp = self._timer_stamp
        armed[tag] = stamp
        self.sim.schedule_timer(delay, armed, tag, stamp, self._fire_timer, tag)
        return tag

    def _fire_timer(self, tag: Any) -> None:
        if self.alive:
            self.on_timer(tag)

    def cancel_timer(self, tag: Hashable = None) -> bool:
        """Cancel the armed timer of ``tag`` (False if none was armed)."""
        if self._armed_timers.pop(tag, None) is None:
            return False
        self.sim.discount_cancelled()
        return True

    def cancel_timers(self) -> None:
        """Cancel every outstanding timer of this process."""
        armed = self._armed_timers
        if armed:
            self.sim.discount_cancelled(len(armed))
            armed.clear()


class ProcessHost:
    """Binds one :class:`Process` to every node of a network.

    Parameters
    ----------
    sim, medium:
        The engine and channel the processes share.
    """

    def __init__(self, sim: Simulator, medium: WirelessMedium):
        self.sim = sim
        self.medium = medium
        self.processes: Dict[int, Process] = {}

    def add(self, node_id: int, process: Process) -> Process:
        """Install ``process`` on ``node_id`` and wire its radio."""
        if node_id in self.processes:
            raise ValueError(f"node {node_id} already hosts a process")
        process.sim = self.sim
        process.medium = self.medium
        process.node_id = node_id
        self.processes[node_id] = process
        node = self.medium.network.node(node_id)

        def handler(packet: Packet, node=node, process=process) -> None:
            if node.alive:
                process.on_packet(packet)

        self.medium.attach(node_id, handler)
        return process

    def add_all(self, factory, node_ids: Optional[Iterable[int]] = None) -> None:
        """Install ``factory(node_id)`` on every (alive) node."""
        ids = node_ids if node_ids is not None else self.medium.network.alive_ids()
        for nid in ids:
            self.add(nid, factory(nid))

    def start(self, stagger: float = 0.0) -> None:
        """Schedule every process's ``on_start`` at t=now (optionally
        staggered by ``stagger`` per node id, modelling asynchronous
        boot).  Boot events are never cancelled, so they take the
        handle-free fire-and-forget path."""
        for i, (nid, proc) in enumerate(sorted(self.processes.items())):
            self.sim.schedule_fire_and_forget(stagger * i, self._boot, nid, proc)

    def _boot(self, node_id: int, process: Process) -> None:
        if self.medium.network.node(node_id).alive:
            process.on_start()

    def get(self, node_id: int) -> Process:
        """The process installed on ``node_id``."""
        return self.processes[node_id]
