"""Discrete-event simulation of the deployed sensor network.

Substitutes for the physical testbed the paper's runtime protocols target:
a deterministic event engine, a unit-disk wireless medium with per-packet
energy/latency from the cost model plus optional loss and jitter, and a
reactive per-node process model matching the paper's event-driven
programming style.
"""

from .engine import EventHandle, Simulator
from .network import Packet, WirelessMedium
from .process import Process, ProcessHost
from .trace import EventTrace, MediumStats, TraceRecord

__all__ = [
    "EventHandle",
    "EventTrace",
    "MediumStats",
    "Packet",
    "Process",
    "ProcessHost",
    "Simulator",
    "TraceRecord",
    "WirelessMedium",
]
