"""The simulated wireless medium.

Realizes single-hop radio communication over the unit-disk graph of a
:class:`~repro.deployment.topology.RealNetwork`:

* **broadcast** — one transmission heard by every alive one-hop neighbour
  (the radio broadcast advantage both Section 5 protocols exploit: a node
  "broadcasts its own (small) routing table to all its neighbors");
* **unicast** — addressed to a single neighbour; other neighbours still
  overhear the channel but the medium charges only the addressee's radio
  (an idealization noted in DESIGN.md).

Per-packet latency and energy come from the active
:class:`~repro.core.cost_model.CostModel`; optional i.i.d. packet loss
models the paper's *"latency of message delivery is unpredictable in
typical sensor networks and some messages might even be dropped"*.
Energy is both drawn from each :class:`SensorNode` battery and recorded in
an :class:`EnergyLedger` keyed by node id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..core.cost_model import CostModel, EnergyLedger, UniformCostModel
from ..deployment.topology import RealNetwork
from .engine import Simulator
from .trace import MediumStats


@dataclass
class Packet:
    """One radio packet.

    ``dst`` is None for broadcasts; for unicasts it names the addressed
    neighbour.  ``kind`` tags the protocol ("rt", "elect", "mGraph", ...);
    ``payload`` is protocol-defined and treated as opaque by the medium.
    """

    src: int
    kind: str
    payload: Any
    size_units: float = 1.0
    dst: Optional[int] = None


class WirelessMedium:
    """The shared radio channel.

    Parameters
    ----------
    sim:
        The event engine.
    network:
        The deployed physical network (adjacency + node batteries).
    cost_model:
        Energy/latency functions (default: the paper's uniform model).
    loss_rate:
        Independent per-receiver drop probability in ``[0, 1)``.
    rng:
        Seeded generator for loss draws (required if ``loss_rate > 0``).
    jitter:
        Maximum extra random delivery delay (models MAC contention);
        0 keeps delivery deterministic.
    """

    def __init__(
        self,
        sim: Simulator,
        network: RealNetwork,
        cost_model: Optional[CostModel] = None,
        loss_rate: float = 0.0,
        rng: "np.random.Generator | int | None" = None,
        jitter: float = 0.0,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.sim = sim
        self.network = network
        self.cost_model = cost_model or UniformCostModel()
        self.loss_rate = loss_rate
        self.jitter = jitter
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)
        self.ledger = EnergyLedger()
        self.stats = MediumStats()
        self._handlers: Dict[int, Callable[[Packet], None]] = {}

    def attach(self, node_id: int, handler: Callable[[Packet], None]) -> None:
        """Register the packet handler of ``node_id`` (its process)."""
        if node_id not in self.network.nodes:
            raise KeyError(f"unknown node {node_id}")
        self._handlers[node_id] = handler

    def detach(self, node_id: int) -> None:
        """Unregister a handler (process shutdown)."""
        self._handlers.pop(node_id, None)

    # -- transmission -------------------------------------------------------------

    def broadcast(
        self, src: int, kind: str, payload: Any, size_units: float = 1.0
    ) -> int:
        """One radio transmission delivered to every alive neighbour.

        Returns the number of scheduled deliveries (post-loss).  A dead
        source transmits nothing.
        """
        node = self.network.node(src)
        if not node.alive:
            return 0
        self._charge_tx(src, size_units, kind)
        packet = Packet(src=src, kind=kind, payload=payload, size_units=size_units)
        delivered = 0
        for nbr in self.network.neighbors(src):
            if self._deliver(packet, nbr):
                delivered += 1
        self.stats.record_tx(kind, size_units, delivered)
        return delivered

    def unicast(
        self, src: int, dst: int, kind: str, payload: Any, size_units: float = 1.0
    ) -> bool:
        """Addressed transmission to a one-hop neighbour.

        Raises :class:`ValueError` if ``dst`` is not a neighbour of
        ``src`` — multi-hop forwarding is a protocol concern
        (``repro.runtime.routing``), not a radio capability.  Returns
        whether delivery was scheduled (False = lost or dead receiver).
        """
        node = self.network.node(src)
        if not node.alive:
            return False
        if dst not in self.network.neighbors(src, alive_only=False):
            raise ValueError(f"{dst} is not a one-hop neighbour of {src}")
        self._charge_tx(src, size_units, kind)
        packet = Packet(
            src=src, kind=kind, payload=payload, size_units=size_units, dst=dst
        )
        ok = self._deliver(packet, dst)
        self.stats.record_tx(kind, size_units, 1 if ok else 0)
        return ok

    # -- internals ---------------------------------------------------------------

    def _charge_tx(self, src: int, size_units: float, kind: str) -> None:
        energy = self.cost_model.tx_energy(size_units)
        self.network.node(src).draw(energy)
        self.ledger.charge(src, energy, f"tx:{kind}")

    def _deliver(self, packet: Packet, receiver: int) -> bool:
        if not self.network.node(receiver).alive:
            return False
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stats.record_drop(packet.kind)
            return False
        delay = self.cost_model.tx_latency(packet.size_units)
        if self.jitter > 0.0:
            delay += float(self.rng.uniform(0.0, self.jitter))
        self.sim.schedule(delay, lambda: self._arrive(packet, receiver))
        return True

    def _arrive(self, packet: Packet, receiver: int) -> None:
        node = self.network.node(receiver)
        if not node.alive:  # died in flight
            return
        energy = self.cost_model.rx_energy(packet.size_units)
        node.draw(energy)
        self.ledger.charge(receiver, energy, f"rx:{packet.kind}")
        self.stats.record_rx(packet.kind, packet.size_units)
        handler = self._handlers.get(receiver)
        if handler is not None:
            handler(packet)
