"""The simulated wireless medium.

Realizes single-hop radio communication over the unit-disk graph of a
:class:`~repro.deployment.topology.RealNetwork`:

* **broadcast** — one transmission heard by every alive one-hop neighbour
  (the radio broadcast advantage both Section 5 protocols exploit: a node
  "broadcasts its own (small) routing table to all its neighbors");
* **unicast** — addressed to a single neighbour; other neighbours still
  overhear the channel but the medium charges only the addressee's radio
  (an idealization noted in DESIGN.md).

Per-packet latency and energy come from the active
:class:`~repro.core.cost_model.CostModel`; optional i.i.d. packet loss
models the paper's *"latency of message delivery is unpredictable in
typical sensor networks and some messages might even be dropped"*.
Energy is both drawn from each :class:`SensorNode` battery and recorded in
an :class:`EnergyLedger` keyed by node id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..core.cost_model import CostModel, EnergyLedger, UniformCostModel
from ..deployment.topology import RealNetwork
from .engine import Simulator
from .trace import MediumStats


@dataclass(frozen=True)
class PartitionSlice:
    """A medium's view of one shard of a space-partitioned run.

    ``local`` is the set of node ids this shard owns (their processes and
    deliveries run here); ``shard_of`` maps every node in the deployment
    to its owning shard.  ``lookahead`` is the conservative bound: every
    cross-shard delivery must arrive at least this far after its
    transmission, which the medium *verifies* at egress time rather than
    assumes (DESIGN.md §12).
    """

    shard_id: int
    local: "frozenset[int]"
    shard_of: Dict[int, int]
    lookahead: float


@dataclass
class Packet:
    """One radio packet.

    ``dst`` is None for broadcasts; for unicasts it names the addressed
    neighbour.  ``kind`` tags the protocol ("rt", "elect", "mGraph", ...);
    ``payload`` is protocol-defined and treated as opaque by the medium.
    """

    src: int
    kind: str
    payload: Any
    size_units: float = 1.0
    dst: Optional[int] = None


class WirelessMedium:
    """The shared radio channel.

    Parameters
    ----------
    sim:
        The event engine.
    network:
        The deployed physical network (adjacency + node batteries).
    cost_model:
        Energy/latency functions (default: the paper's uniform model).
    loss_rate:
        Independent per-receiver drop probability in ``[0, 1)``.
    rng:
        Seeded generator for loss draws (required if ``loss_rate > 0``).
    jitter:
        Maximum extra random delivery delay (models MAC contention);
        0 keeps delivery deterministic.
    batch_fanout:
        When True (default), broadcasts take the batched fast path in
        EVERY regime: loss draws and jitter draws are vectorized in
        alive-neighbour order (stream-identical to the scalar per-receiver
        draws), and deliveries are bucketed by exact arrival time — a
        jitter-free broadcast schedules ONE delivery event that charges
        every surviving receiver, a jittered one schedules one event per
        distinct arrival time.  Observable results (:class:`MediumStats`,
        the energy ledger, handler invocation order and timestamps) are
        identical either way; only ``Simulator.events_processed`` differs.
        Set False to force the per-receiver legacy path (used by the
        equivalence tests and the perf harness).
    """

    def __init__(
        self,
        sim: Simulator,
        network: RealNetwork,
        cost_model: Optional[CostModel] = None,
        loss_rate: float = 0.0,
        rng: "np.random.Generator | int | None" = None,
        jitter: float = 0.0,
        batch_fanout: bool = True,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.sim = sim
        self.network = network
        self.cost_model = cost_model or UniformCostModel()
        self.loss_rate = loss_rate
        self.jitter = jitter
        self.batch_fanout = batch_fanout
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)
        self.ledger = EnergyLedger()
        self.stats = MediumStats()
        self._handlers: Dict[int, Callable[[Packet], None]] = {}
        # (src, dst) pairs whose radio link is administratively severed
        # (fault injection); empty in normal operation so the hot paths
        # pay only a truthiness check
        self._blocked_links: "set[tuple[int, int]]" = set()
        # optional in-flight frame mangler (fault injection): called with
        # each outgoing Packet, returns the packet to actually deliver
        self.tx_transform: Optional[Callable[[Packet], Packet]] = None
        # space partitioning (repro.partition): None = whole-world medium
        self._partition: Optional[PartitionSlice] = None
        self._egress: List["tuple[int, float, int, int, Packet, tuple[int, ...]]"] = []
        self._emit_seq = 0
        # events a single-simulator run would NOT have fired: broadcast
        # buckets split across shards, plus non-owned fault firings.  The
        # merged run subtracts this so events_processed is K-invariant.
        self.partition_overhead = 0
        # scenario hooks (repro.scenario): an optional per-directed-link
        # admission gate (radio models) and a passive delivery tap the
        # pursuit adversary replays post-run.  Both default off so the
        # no-scenario hot path pays only a None check.
        self.link_gate: Optional[Any] = None
        self.delivery_log: "Optional[List[tuple[float, int, int]]]" = None
        self.tap_kinds: "frozenset[str]" = frozenset()

    # -- space partitioning (repro.partition) -------------------------------------

    def configure_partition(self, part: PartitionSlice) -> None:
        """Attach this medium to one shard of a partitioned run.

        From here on, deliveries to nodes outside ``part.local`` are not
        scheduled on the local simulator; they are buffered as egress
        records (drained at each window barrier) carrying the packet, its
        absolute arrival time, and the receiver group — the shard runner
        routes them to the owning shard, which injects them via
        :meth:`inject_boundary`.
        """
        if not self.batch_fanout:
            raise ValueError("partitioned media require batch_fanout=True")
        if part.lookahead <= 0:
            raise ValueError("lookahead must be positive")
        self._partition = part

    def drain_egress(self) -> List["tuple[int, float, int, int, Packet, tuple[int, ...]]"]:
        """Hand over (and clear) the boundary-crossing deliveries buffered
        since the last window barrier.

        Records are ``(dst_shard, arrival_time, src_shard, emit_seq,
        packet, receivers)``; ``emit_seq`` is a per-shard monotone counter
        so the receiving shard can order same-timestamp injections from
        one source deterministically.
        """
        out = self._egress
        self._egress = []
        return out

    def inject_boundary(
        self, time: float, packet: Packet, receivers: "tuple[int, ...]"
    ) -> None:
        """Schedule a boundary arrival handed over by a neighbour shard.

        ``time`` is absolute; the conservative window protocol guarantees
        ``time >= sim.now`` (arrivals land at or beyond the current window
        edge), so :meth:`Simulator.inject_at` never rejects.
        """
        if len(receivers) == 1:
            self.sim.inject_at(time, self._arrive, packet, receivers[0])
        else:
            self.sim.inject_at(time, self._arrive_many, packet, list(receivers))

    def _check_lookahead(self, delay: float) -> None:
        part = self._partition
        if part is not None and delay < part.lookahead:
            raise RuntimeError(
                f"cross-shard delivery delay {delay} beats the configured "
                f"lookahead {part.lookahead}: the conservative window "
                "protocol would miss it (lower the lookahead bound)"
            )

    def _emit(
        self,
        dst_shard: int,
        arrival: float,
        packet: Packet,
        receivers: "tuple[int, ...]",
    ) -> None:
        part = self._partition
        self._egress.append(
            (dst_shard, arrival, part.shard_id, self._emit_seq, packet, receivers)
        )
        self._emit_seq += 1

    def _partition_dispatch(
        self,
        packet: Packet,
        survivors: List[int],
        delay: float,
        extras: "np.ndarray | List[float] | None",
    ) -> None:
        """Partition-aware broadcast fan-out.

        Replicates the legacy tail exactly for local receivers (same
        arrival-time buckets in first-seen order, delivered in receiver
        order) and turns each bucket's remote receivers into one egress
        record per destination shard.  Every extra event a bucket split
        causes — relative to the single event a whole-world medium would
        schedule — is tallied in :attr:`partition_overhead`.
        """
        self._check_lookahead(delay)
        if extras is None:
            buckets: Dict[float, List[int]] = {delay: survivors}
        else:
            buckets = {}
            for nbr, extra in zip(survivors, extras):
                time = delay + float(extra)
                group = buckets.get(time)
                if group is None:
                    buckets[time] = [nbr]
                else:
                    group.append(nbr)
        part = self._partition
        local = part.local
        shard_of = part.shard_of
        now = self.sim.now
        schedule = self.sim.schedule_fire_and_forget
        for time, group in buckets.items():
            local_group: List[int] = []
            remote: Dict[int, List[int]] = {}
            for nbr in group:
                if nbr in local:
                    local_group.append(nbr)
                else:
                    bucket = remote.get(shard_of[nbr])
                    if bucket is None:
                        remote[shard_of[nbr]] = [nbr]
                    else:
                        bucket.append(nbr)
            if local_group:
                if len(local_group) == 1:
                    schedule(time, self._arrive, packet, local_group[0])
                else:
                    schedule(time, self._arrive_many, packet, local_group)
            for dst_shard, remote_group in remote.items():
                self._emit(dst_shard, now + time, packet, tuple(remote_group))
            self.partition_overhead += (1 if local_group else 0) + len(remote) - 1

    def _deliver_remote(self, packet: Packet, dst: int) -> bool:
        """Unicast delivery to a node owned by another shard.

        Loss and jitter draws happen *here*, on the source shard's RNG —
        mirroring the whole-world medium, where every draw for a
        transmission is consumed in the sender's context — so the stream
        each shard generator sees is a pure function of its own nodes'
        transmissions.
        """
        if not self.network.node(dst).alive:
            return False
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stats.record_drop(packet.kind)
            return False
        delay = self.cost_model.tx_latency(packet.size_units)
        self._check_lookahead(delay)
        if self.jitter > 0.0:
            delay += float(self.rng.uniform(0.0, self.jitter))
        self._emit(self._partition.shard_of[dst], self.sim.now + delay, packet, (dst,))
        return True

    # -- link partitioning (fault injection) --------------------------------------

    def block_link(self, a: int, b: int, symmetric: bool = True) -> None:
        """Sever the radio link ``a -> b`` (and ``b -> a`` if symmetric).

        Blocked links drop transmissions before any loss/jitter draw is
        consumed, so a plan that partitions links perturbs the RNG stream
        only through the deliveries it removes — deterministically.
        """
        self._blocked_links.add((a, b))
        if symmetric:
            self._blocked_links.add((b, a))

    def unblock_link(self, a: int, b: int, symmetric: bool = True) -> None:
        """Restore a previously blocked link (no-op if not blocked)."""
        self._blocked_links.discard((a, b))
        if symmetric:
            self._blocked_links.discard((b, a))

    def attach(self, node_id: int, handler: Callable[[Packet], None]) -> None:
        """Register the packet handler of ``node_id`` (its process)."""
        if node_id not in self.network.nodes:
            raise KeyError(f"unknown node {node_id}")
        self._handlers[node_id] = handler

    def detach(self, node_id: int) -> None:
        """Unregister a handler (process shutdown)."""
        self._handlers.pop(node_id, None)

    # -- transmission -------------------------------------------------------------

    def broadcast(
        self, src: int, kind: str, payload: Any, size_units: float = 1.0
    ) -> int:
        """One radio transmission delivered to every alive neighbour.

        Returns the number of scheduled deliveries (post-loss).  A dead
        source transmits nothing.

        The loss and jitter draws are consumed in alive-neighbour order
        exactly as the scalar per-receiver path would (numpy's vectorized
        draws are stream-identical to repeated scalar draws), so seeded
        runs are byte-for-byte reproducible across the fast and legacy
        paths.
        """
        node = self.network.node(src)
        if not node.alive:
            return 0
        self._charge_tx(src, size_units, kind)
        packet = Packet(src=src, kind=kind, payload=payload, size_units=size_units)
        if self.tx_transform is not None:
            packet = self.tx_transform(packet)
        receivers = self.network.alive_neighbors(src)
        if self._blocked_links:
            blocked = self._blocked_links
            receivers = [r for r in receivers if (src, r) not in blocked]
        gate = self.link_gate
        if gate is not None and receivers:
            # link-model admission (repro.scenario): decided per directed
            # link from counter hashes BEFORE any loss/jitter RNG draw, so
            # gated runs keep the medium stream aligned across modes
            admit = gate.admit
            kept = [r for r in receivers if admit(src, r)]
            faded = len(receivers) - len(kept)
            if faded:
                self.stats.record_drops(kind, faded)
            receivers = kept
        if not receivers:
            self.stats.record_tx(kind, size_units, 0)
            return 0
        if not self.batch_fanout:
            # Legacy per-receiver path: the oracle the equivalence tests
            # hold the fast path to.
            delivered = 0
            for nbr in receivers:
                if self._deliver(packet, nbr):
                    delivered += 1
            self.stats.record_tx(kind, size_units, delivered)
            return delivered
        jitter = self.jitter
        if self.loss_rate > 0.0:
            if jitter > 0.0:
                # loss AND jitter: the seed interleaves the draws per
                # receiver (loss_i then jitter_i); replicate that stream
                # with chunked vectorized draws
                survivors, extras = self._draw_loss_and_jitter(receivers)
            else:
                draws = self.rng.random(len(receivers))
                survivors = [r for r, d in zip(receivers, draws) if d >= self.loss_rate]
                extras = None
            dropped = len(receivers) - len(survivors)
            if dropped:
                self.stats.record_drops(kind, dropped)
        else:
            survivors = list(receivers)
            extras = self.rng.uniform(0.0, jitter, len(survivors)) if jitter > 0.0 else None
        delay = self.cost_model.tx_latency(size_units)
        if survivors:
            if self._partition is not None:
                self._partition_dispatch(packet, survivors, delay, extras)
            elif extras is None:
                # fan-out fast path: one event charges every receiver
                self.sim.schedule_fire_and_forget(delay, self._arrive_many, packet, survivors)
            else:
                self._schedule_jittered(packet, survivors, delay, extras)
        self.stats.record_tx(kind, size_units, len(survivors))
        return len(survivors)

    def unicast(
        self, src: int, dst: int, kind: str, payload: Any, size_units: float = 1.0
    ) -> bool:
        """Addressed transmission to a one-hop neighbour.

        Raises :class:`ValueError` if ``dst`` is not a neighbour of
        ``src`` — multi-hop forwarding is a protocol concern
        (``repro.runtime.routing``), not a radio capability.  Returns
        whether delivery was scheduled (False = lost or dead receiver).
        """
        node = self.network.node(src)
        if not node.alive:
            return False
        if dst not in self.network.neighbor_set(src):
            raise ValueError(f"{dst} is not a one-hop neighbour of {src}")
        self._charge_tx(src, size_units, kind)
        if self._blocked_links and (src, dst) in self._blocked_links:
            # partitioned link: energy is spent, nothing arrives
            self.stats.record_drop(kind)
            self.stats.record_tx(kind, size_units, 0)
            return False
        if self.link_gate is not None and not self.link_gate.admit(src, dst):
            # faded by the link model: energy is spent, nothing arrives
            self.stats.record_drop(kind)
            self.stats.record_tx(kind, size_units, 0)
            return False
        packet = Packet(
            src=src, kind=kind, payload=payload, size_units=size_units, dst=dst
        )
        if self.tx_transform is not None:
            packet = self.tx_transform(packet)
        if self._partition is not None and dst not in self._partition.local:
            ok = self._deliver_remote(packet, dst)
        else:
            ok = self._deliver(packet, dst)
        self.stats.record_tx(kind, size_units, 1 if ok else 0)
        return ok

    # -- internals ---------------------------------------------------------------

    def _draw_loss_and_jitter(
        self, receivers: "tuple[int, ...] | List[int]"
    ) -> "tuple[List[int], List[float]]":
        """Vectorized replication of the interleaved per-receiver stream.

        The legacy path consumes one double per receiver (the loss draw)
        plus one more per survivor (the jitter draw), strictly interleaved
        in alive-neighbour order.  Because a numpy ``Generator`` serves
        ``random(n)`` from the same double stream as ``n`` scalar draws,
        the interleaved sequence can be replayed from chunked buffers: walk
        a buffer classifying each double as a loss or jitter draw, and when
        it runs out, draw exactly the guaranteed minimum still owed (one
        per undecided receiver, plus a pending jitter draw) — never
        overshooting, so the generator state after the broadcast is
        byte-identical to the legacy path's.

        Returns ``(survivors, extra_delays)`` aligned with each other, in
        receiver order.
        """
        rng = self.rng
        loss_rate = self.loss_rate
        jitter = self.jitter
        n = len(receivers)
        survivors: List[int] = []
        extras: List[float] = []
        buf = rng.random(n)
        avail = n
        pos = 0
        i = 0
        pending_jitter = False
        while i < n or pending_jitter:
            if pos == avail:
                need = (n - i) + (1 if pending_jitter else 0)
                buf = rng.random(need)
                avail = need
                pos = 0
            draw = buf[pos]
            pos += 1
            if pending_jitter:
                extras.append(jitter * float(draw))
                pending_jitter = False
            elif draw < loss_rate:
                i += 1
            else:
                survivors.append(receivers[i])
                i += 1
                pending_jitter = True
        return survivors, extras

    def _schedule_jittered(
        self,
        packet: Packet,
        survivors: List[int],
        delay: float,
        extras: "np.ndarray | List[float]",
    ) -> None:
        """Time-bucketed fan-out for jittered deliveries.

        Survivors are grouped by their exact arrival time in first-seen
        (receiver) order: one event per distinct timestamp.  With
        continuous jitter the buckets are almost always singletons, but
        coincident arrivals of one transmission collapse into a single
        ``_arrive_many`` — which delivers in receiver order, exactly the
        (time, seq) order the legacy per-receiver path produces.
        """
        buckets: Dict[float, List[int]] = {}
        for nbr, extra in zip(survivors, extras):
            time = delay + float(extra)
            group = buckets.get(time)
            if group is None:
                buckets[time] = [nbr]
            else:
                group.append(nbr)
        schedule = self.sim.schedule_fire_and_forget
        arrive = self._arrive
        arrive_many = self._arrive_many
        for time, group in buckets.items():
            if len(group) == 1:
                schedule(time, arrive, packet, group[0])
            else:
                schedule(time, arrive_many, packet, group)

    def _charge_tx(self, src: int, size_units: float, kind: str) -> None:
        energy = self.cost_model.tx_energy(size_units)
        self.network.node(src).draw(energy)
        self.ledger.charge(src, energy, f"tx:{kind}")

    def _deliver(self, packet: Packet, receiver: int) -> bool:
        if not self.network.node(receiver).alive:
            return False
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stats.record_drop(packet.kind)
            return False
        delay = self.cost_model.tx_latency(packet.size_units)
        if self.jitter > 0.0:
            delay += float(self.rng.uniform(0.0, self.jitter))
        self.sim.schedule_fire_and_forget(delay, self._arrive, packet, receiver)
        return True

    def _arrive(self, packet: Packet, receiver: int) -> None:
        node = self.network.node(receiver)
        if not node.alive:  # died in flight
            return
        if self.tap_kinds and packet.kind in self.tap_kinds:
            # passive adversary tap (repro.scenario): record, never perturb
            self.delivery_log.append((self.sim.now, packet.src, receiver))
        energy = self.cost_model.rx_energy(packet.size_units)
        node.draw(energy)
        self.ledger.charge(receiver, energy, f"rx:{packet.kind}")
        self.stats.record_rx(packet.kind, packet.size_units)
        handler = self._handlers.get(receiver)
        if handler is not None:
            handler(packet)

    def _arrive_many(self, packet: Packet, receivers: List[int]) -> None:
        """Batched arrival: one event delivers to every receiver in order.

        Receiver order matches the per-receiver path's event order, so
        handler side effects (and anything they schedule) sequence
        identically.
        """
        for receiver in receivers:
            self._arrive(packet, receiver)
