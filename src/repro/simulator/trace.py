"""Simulation statistics and tracing.

:class:`MediumStats` aggregates the channel-level counters every experiment
reports (messages, data units, drops, per-protocol breakdowns);
:class:`EventTrace` is an optional structured log for debugging protocol
runs and for the convergence-time measurements of experiments E4/E5.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


def stable_digest(obj: Any) -> str:
    """Short stable hex digest of a fingerprint-style value.

    Intended for the canonical tuples :meth:`MediumStats.fingerprint` and
    ``EnergyLedger.fingerprint`` return — nested tuples of ints, floats,
    and strings, whose ``repr`` is deterministic across processes (Python
    reprs floats as their shortest round-trip form).  The digest is what
    sweep result records carry: JSON-friendly, order-stable, and
    comparable across shards, machines, and commits.
    """
    return hashlib.sha256(repr(obj).encode()).hexdigest()[:16]


@dataclass
class MediumStats:
    """Channel counters maintained by the wireless medium."""

    transmissions: int = 0
    deliveries: int = 0
    drops: int = 0
    data_units_sent: float = 0.0
    data_units_received: float = 0.0
    by_kind_tx: Dict[str, int] = field(default_factory=dict)
    by_kind_rx: Dict[str, int] = field(default_factory=dict)
    by_kind_drop: Dict[str, int] = field(default_factory=dict)

    def record_tx(self, kind: str, size_units: float, deliveries: int) -> None:
        """One transmission of ``kind`` reaching ``deliveries`` receivers."""
        self.transmissions += 1
        self.data_units_sent += size_units
        self.by_kind_tx[kind] = self.by_kind_tx.get(kind, 0) + 1
        self.deliveries += deliveries

    def record_rx(self, kind: str, size_units: float) -> None:
        """One packet arrival."""
        self.data_units_received += size_units
        self.by_kind_rx[kind] = self.by_kind_rx.get(kind, 0) + 1

    def record_drop(self, kind: str) -> None:
        """One lost packet."""
        self.drops += 1
        self.by_kind_drop[kind] = self.by_kind_drop.get(kind, 0) + 1

    def record_drops(self, kind: str, count: int) -> None:
        """``count`` lost packets of one kind (vectorized loss draws)."""
        self.drops += count
        self.by_kind_drop[kind] = self.by_kind_drop.get(kind, 0) + count

    def merge(self, other: "MediumStats") -> None:
        """Fold another stats object into this one (shard-result merge).

        Every counter is a sum over disjoint sources — transmissions are
        counted at the sending shard, receptions at the receiving shard,
        drops at whichever shard consumed the loss draw — so summing the
        per-shard objects reproduces exactly the counters a whole-world
        medium would have recorded.
        """
        self.transmissions += other.transmissions
        self.deliveries += other.deliveries
        self.drops += other.drops
        self.data_units_sent += other.data_units_sent
        self.data_units_received += other.data_units_received
        for key, val in other.by_kind_tx.items():
            self.by_kind_tx[key] = self.by_kind_tx.get(key, 0) + val
        for key, val in other.by_kind_rx.items():
            self.by_kind_rx[key] = self.by_kind_rx.get(key, 0) + val
        for key, val in other.by_kind_drop.items():
            self.by_kind_drop[key] = self.by_kind_drop.get(key, 0) + val

    def tx_of_kind(self, kind: str) -> int:
        """Transmissions tagged ``kind``."""
        return self.by_kind_tx.get(kind, 0)

    def summary(self) -> Dict[str, float]:
        """Flat dictionary for benchmark rows."""
        return {
            "transmissions": float(self.transmissions),
            "deliveries": float(self.deliveries),
            "drops": float(self.drops),
            "data_units_sent": self.data_units_sent,
        }

    def fingerprint(self) -> Tuple:
        """Canonical, order-stable serialization of every counter.

        Two runs are observationally identical at the channel level iff
        their fingerprints compare equal; the determinism tests and
        ``repro.bench`` compare these instead of hand-rolled dicts.
        """
        return (
            self.transmissions,
            self.deliveries,
            self.drops,
            self.data_units_sent,
            self.data_units_received,
            tuple(sorted(self.by_kind_tx.items())),
            tuple(sorted(self.by_kind_rx.items())),
            tuple(sorted(self.by_kind_drop.items())),
        )

    def fingerprint_digest(self) -> str:
        """JSON-friendly digest of :meth:`fingerprint` for result records."""
        return stable_digest(self.fingerprint())


@dataclass
class TraceRecord:
    """One structured trace entry: (time, node, event, detail)."""

    time: float
    node: int
    event: str
    detail: Any = None


class EventTrace:
    """Append-only structured log with simple query helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def log(self, time: float, node: int, event: str, detail: Any = None) -> None:
        """Append a record (no-op when disabled)."""
        if self.enabled:
            self.records.append(TraceRecord(time, node, event, detail))

    def of_event(self, event: str) -> List[TraceRecord]:
        """All records with a given event tag."""
        return [r for r in self.records if r.event == event]

    def last_time(self, event: Optional[str] = None) -> float:
        """Timestamp of the last (matching) record; 0.0 if none."""
        matching = self.records if event is None else self.of_event(event)
        return matching[-1].time if matching else 0.0

    def __len__(self) -> int:
        return len(self.records)
