"""Discrete-event simulation engine.

A minimal, deterministic event-queue kernel: events are ``(time, seq)``
ordered callbacks, where the monotone sequence number makes simultaneous
events fire in scheduling order — runs are exactly reproducible for a
given seed, which every experiment in EXPERIMENTS.md relies on.

Hot-path design notes:

* :meth:`Simulator.schedule` takes ``(callback, *args)`` so callers on the
  packet path (the wireless medium, timers) never build a per-event lambda
  closure — the args tuple rides in the heap entry instead.
* Cancelled events are counted as they are cancelled and discounted as
  they are lazily popped, so :attr:`Simulator.pending` reports the number
  of *live* events in O(1) without scanning the heap.
* :meth:`Simulator.schedule_timer` is the handle-free cancellation path:
  instead of allocating an :class:`EventHandle` per timer, the caller owns
  a ``{key: stamp}`` registry and the event fires only if the registry
  still maps its key to its stamp at the deadline.  Re-arming or removing
  the key cancels the queued event for free; the stale heap entry is
  skipped on pop without advancing the clock, exactly like a cancelled
  :class:`EventHandle`.

The engine knows nothing about radios or nodes; ``repro.simulator.network``
builds the wireless medium on top and ``repro.simulator.process`` the
per-node reactive processes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

#: Sentinel occupying the handle slot of heap entries scheduled via
#: :meth:`Simulator.schedule_timer`.  An identity check against it is the
#: only per-event cost the timer path adds to the hot loop.
_TIMER = object()


class Simulator:
    """The event loop.

    Use :meth:`schedule` (relative delay) or :meth:`schedule_at` (absolute
    time) to enqueue callbacks, then :meth:`run` to drain the queue.
    """

    def __init__(self) -> None:
        self._queue: List[
            Tuple[float, int, "EventHandle", Callable[..., None], Tuple[Any, ...]]
        ] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._cancelled_pending = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of *live* events still queued (cancelled ones excluded)."""
        return len(self._queue) - self._cancelled_pending

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> "EventHandle":
        """Enqueue ``callback(*args)`` to fire ``delay`` time units from now.

        Passing positional ``args`` here instead of closing over them keeps
        the per-packet path allocation-free of lambdas.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        # inlined push (not delegated to schedule_at): this is the hottest
        # call in the simulator and the *args repack through a second frame
        # costs ~15% of raw event throughput
        time = self._now + delay
        handle = EventHandle(time, self)
        heapq.heappush(self._queue, (time, next(self._seq), handle, callback, args))
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> "EventHandle":
        """Enqueue ``callback(*args)`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past (now={self._now}, time={time})"
            )
        handle = EventHandle(time, self)
        heapq.heappush(self._queue, (time, next(self._seq), handle, callback, args))
        return handle

    def schedule_fire_and_forget(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Like :meth:`schedule` but returns no :class:`EventHandle`.

        The event cannot be cancelled; in exchange the per-event handle
        allocation disappears.  This is the packet-delivery hot path.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._seq), None, callback, args)
        )

    def schedule_timer(
        self,
        delay: float,
        armed: Dict[Hashable, int],
        key: Hashable,
        stamp: int,
        callback: Callable[[Any], None],
        tag: Any,
    ) -> None:
        """Enqueue ``callback(tag)`` after ``delay``, cancellable without a
        per-event :class:`EventHandle`.

        The caller owns ``armed``: the event fires iff ``armed[key] ==
        stamp`` at its deadline (the engine removes the entry just before
        firing, so a re-arm from inside the callback works).  Replacing or
        deleting the entry cancels the queued event; the caller must report
        such cancellations through :meth:`discount_cancelled` to keep
        :attr:`pending` exact.  ``stamp`` values must never be reused for
        the same registry key while a stale event may still be queued —
        give each registry a monotone stamp counter.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        heapq.heappush(
            self._queue,
            (
                self._now + delay,
                next(self._seq),
                _TIMER,
                callback,
                (armed, key, stamp, tag),
            ),
        )

    def discount_cancelled(self, count: int = 1) -> None:
        """Report ``count`` still-queued events as logically cancelled.

        Used by owners of :meth:`schedule_timer` registries when they
        remove or supersede an armed entry; keeps :attr:`pending` an exact
        live-event count (the stale heap entries are dropped lazily).
        """
        self._cancelled_pending += count

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Process events in order until the queue drains, ``until`` is
        reached, or ``max_events`` have fired.  Returns the final time.

        ``until`` must not lie in the past: repeated ``run(until=t)`` calls
        form a monotone timeline, and the clock advances to ``until`` even
        when the queue drains early.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        if until is not None and until < self._now:
            raise ValueError(
                f"cannot run backward (now={self._now}, until={until})"
            )
        self._running = True
        fired = 0
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                time, _, handle, callback, args = queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heappop(queue)
                if handle is not None:
                    if handle is _TIMER:
                        armed, key, stamp, tag = args
                        if armed.get(key) != stamp:
                            # re-armed or cancelled: skip without touching
                            # the clock, like a cancelled EventHandle
                            self._cancelled_pending -= 1
                            continue
                        del armed[key]  # mark fired: re-arm inside works
                        self._now = time
                        callback(tag)
                        fired += 1
                        if max_events is not None and fired >= max_events:
                            break
                        continue
                    if handle.cancelled:
                        self._cancelled_pending -= 1
                        continue
                    handle.sim = None  # mark fired: a late cancel() is a no-op
                self._now = time
                if args:
                    callback(*args)
                else:
                    callback()
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
            else:
                # queue drained before `until`: the clock still owes the
                # caller the full interval
                if until is not None:
                    self._now = until
        finally:
            self._running = False
            self._events_processed += fired
        return self._now

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest queued heap entry (None if empty).

        Cancelled/stale entries are *included*, so the value is a lower
        bound on the next live event's time — exactly what a conservative
        lookahead scheduler needs: under-estimating only costs an extra
        (empty) synchronization window, never a causality violation.
        """
        return self._queue[0][0] if self._queue else None

    def run_until_lookahead(
        self, horizon: float, max_events: Optional[int] = None
    ) -> int:
        """Drain events with ``time <= horizon``; returns the number fired.

        The partitioned simulator's window drain (DESIGN.md §12).  Unlike
        :meth:`run`, the clock is **not** advanced to ``horizon`` when the
        queue runs dry — it stays at the last fired event, so (a) the
        merged run's latency is the true last-event time, and (b) events
        injected by a neighbouring shard at any time in ``(now, horizon]``
        remain schedulable between windows.  Repeated calls with a
        monotone ``horizon`` sequence process exactly the events a single
        :meth:`run` would, in the same order.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        if horizon < self._now:
            raise ValueError(
                f"cannot run backward (now={self._now}, horizon={horizon})"
            )
        self._running = True
        fired = 0
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                time, _, handle, callback, args = queue[0]
                if time > horizon:
                    break
                heappop(queue)
                if handle is not None:
                    if handle is _TIMER:
                        armed, key, stamp, tag = args
                        if armed.get(key) != stamp:
                            self._cancelled_pending -= 1
                            continue
                        del armed[key]
                        self._now = time
                        callback(tag)
                        fired += 1
                        if max_events is not None and fired >= max_events:
                            break
                        continue
                    if handle.cancelled:
                        self._cancelled_pending -= 1
                        continue
                    handle.sim = None
                self._now = time
                if args:
                    callback(*args)
                else:
                    callback()
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
            self._events_processed += fired
        return fired

    def inject_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Externally-fed event injection at absolute ``time`` (>= now).

        The cross-shard delivery path of the partitioned simulator: a
        boundary packet handed over at a window barrier is scheduled here
        at its exact arrival time.  ``time == now`` is allowed (an arrival
        landing exactly on a window edge fires at the correct virtual time
        in the next window); like the fire-and-forget path, no handle is
        allocated and the event cannot be cancelled.
        """
        if time < self._now:
            raise ValueError(
                f"cannot inject in the past (now={self._now}, time={time})"
            )
        heapq.heappush(self._queue, (time, next(self._seq), None, callback, args))

    def run_until_quiet(self, max_events: int = 10_000_000) -> float:
        """Drain every event; raise if the budget is exceeded (an
        accidental livelock in a protocol under test)."""
        start = self._events_processed
        self.run(max_events=max_events)
        if self.pending:
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events "
                f"({self._events_processed - start} fired)"
            )
        return self._now


class EventHandle:
    """Cancellable reference to a scheduled event (timers use this)."""

    __slots__ = ("time", "cancelled", "sim")

    def __init__(self, time: float, sim: Optional[Simulator] = None):
        self.time = time
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no effect if already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            # still queued: keep the simulator's live-event count accurate
            self.sim._cancelled_pending += 1
            self.sim = None

    # Handles participate in heap tuples; order ties deterministically by id.
    def __lt__(self, other: "EventHandle") -> bool:
        return id(self) < id(other)
