"""Discrete-event simulation engine.

A minimal, deterministic event-queue kernel: events are ``(time, seq)``
ordered callbacks, where the monotone sequence number makes simultaneous
events fire in scheduling order — runs are exactly reproducible for a
given seed, which every experiment in EXPERIMENTS.md relies on.

The engine knows nothing about radios or nodes; ``repro.simulator.network``
builds the wireless medium on top and ``repro.simulator.process`` the
per-node reactive processes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class Simulator:
    """The event loop.

    Use :meth:`schedule` (relative delay) or :meth:`schedule_at` (absolute
    time) to enqueue callbacks, then :meth:`run` to drain the queue.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, "EventHandle", Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (cancelled events included)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> "EventHandle":
        """Enqueue ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> "EventHandle":
        """Enqueue ``callback`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past (now={self._now}, time={time})"
            )
        handle = EventHandle(time)
        heapq.heappush(self._queue, (time, next(self._seq), handle, callback))
        return handle

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Process events in order until the queue drains, ``until`` is
        reached, or ``max_events`` have fired.  Returns the final time."""
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                time, _, handle, callback = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self._now = time
                callback()
                self._events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        return self._now

    def run_until_quiet(self, max_events: int = 10_000_000) -> float:
        """Drain every event; raise if the budget is exceeded (an
        accidental livelock in a protocol under test)."""
        start = self._events_processed
        self.run(max_events=max_events)
        if self._queue and any(not h.cancelled for _, _, h, _ in self._queue):
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events "
                f"({self._events_processed - start} fired)"
            )
        return self._now


class EventHandle:
    """Cancellable reference to a scheduled event (timers use this)."""

    __slots__ = ("time", "cancelled")

    def __init__(self, time: float):
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no effect if already fired)."""
        self.cancelled = True

    # Handles participate in heap tuples; order ties deterministically by id.
    def __lt__(self, other: "EventHandle") -> bool:
        return id(self) < id(other)
