"""The paper's primary contribution: the virtual architecture.

This package contains everything the algorithm designer sees — the virtual
topology, programming primitives, group middleware, cost functions, the
task-graph application model, the mapping stage, and the program-synthesis
pass — independent of any deployment (``repro.deployment``) or runtime
protocol (``repro.runtime``).
"""

from .coords import (
    ALL_DIRECTIONS,
    Direction,
    GridCoord,
    manhattan,
    morton_decode,
    morton_encode,
    xy_route,
)
from .auto_mapping import (
    AnnealingResult,
    anneal_mapping,
    balanced_energy_objective,
    latency_objective,
    total_energy_objective,
)
from .cost_model import (
    CostModel,
    EnergyLedger,
    FirstOrderRadioCostModel,
    PerformanceReport,
    UniformCostModel,
    energy_balance,
    system_lifetime,
    total_energy,
)
from .event_driven import (
    EventDrivenAggregation,
    ExpectedCost,
    expected_quadtree_cost,
    simulate_event_activations,
)
from .executor import ExecutionResult, VirtualGridExecutor, execute_round
from .sync_executor import SynchronousGridExecutor, execute_round_sync
from .groups import (
    CenterLeaderPolicy,
    HierarchicalGroups,
    LeaderPolicy,
    NorthWestLeaderPolicy,
    RandomLeaderPolicy,
)
from .mapping import (
    ConstraintViolation,
    Mapping,
    check_all_constraints,
    check_coverage,
    check_spatial_correlation,
    recursive_quadrant_mapping,
    sink_rooted_mapping,
)
from .naming import LogicalNamingService, UnknownNameError
from .network_model import OrientedGrid, VirtualTopology, VirtualTree
from .primitives import CollectiveReport, Envelope, PrimitiveEnvironment
from .process_network import Channel, DeadlockError, ProcessNetwork
from .program import Context, Effect, Message, NodeProgram, Rule
from .synthesis import (
    Aggregation,
    CountAggregation,
    MaxAggregation,
    SumAggregation,
    SynthesizedProgram,
    synthesize_quadtree_program,
)
from .taskgraph import Task, TaskGraph, TaskId, build_quadtree, quadtree_ascii
from .tree_synthesis import (
    TreeExecutor,
    TreeProgramSpec,
    execute_tree_round,
    synthesize_tree_program,
)
from .virtual_architecture import VirtualArchitecture

__all__ = [
    "ALL_DIRECTIONS",
    "Aggregation",
    "AnnealingResult",
    "CenterLeaderPolicy",
    "Channel",
    "CollectiveReport",
    "ConstraintViolation",
    "Context",
    "CostModel",
    "CountAggregation",
    "DeadlockError",
    "Direction",
    "Effect",
    "EnergyLedger",
    "Envelope",
    "EventDrivenAggregation",
    "ExecutionResult",
    "ExpectedCost",
    "FirstOrderRadioCostModel",
    "GridCoord",
    "HierarchicalGroups",
    "LeaderPolicy",
    "LogicalNamingService",
    "Mapping",
    "MaxAggregation",
    "Message",
    "NodeProgram",
    "NorthWestLeaderPolicy",
    "OrientedGrid",
    "PerformanceReport",
    "PrimitiveEnvironment",
    "ProcessNetwork",
    "RandomLeaderPolicy",
    "Rule",
    "SumAggregation",
    "SynchronousGridExecutor",
    "SynthesizedProgram",
    "Task",
    "TaskGraph",
    "TaskId",
    "TreeExecutor",
    "TreeProgramSpec",
    "UnknownNameError",
    "VirtualArchitecture",
    "VirtualGridExecutor",
    "VirtualTopology",
    "VirtualTree",
    "anneal_mapping",
    "balanced_energy_objective",
    "build_quadtree",
    "check_all_constraints",
    "check_coverage",
    "check_spatial_correlation",
    "energy_balance",
    "execute_round",
    "execute_round_sync",
    "execute_tree_round",
    "expected_quadtree_cost",
    "latency_objective",
    "manhattan",
    "morton_decode",
    "morton_encode",
    "quadtree_ascii",
    "recursive_quadrant_mapping",
    "simulate_event_activations",
    "sink_rooted_mapping",
    "synthesize_quadtree_program",
    "synthesize_tree_program",
    "system_lifetime",
    "total_energy",
    "total_energy_objective",
    "xy_route",
]
