"""Programming primitives of the virtual architecture (Sections 2, 3.2).

*"The virtual architecture specifies the computation and communication
primitives available to the programmer.  These primitives could be for the
individual node or for a set of nodes (collective).  Communication
primitives could range from the simple send() and receive() message passing
primitives to more sophisticated ones for group communication.  Computation
primitives could include summing, sorting, or ranking a set of data values
from a set of sensor nodes."*

This module provides both flavours against the design-time grid:

* **Node primitives** — :meth:`PrimitiveEnvironment.send`, addressed to any
  grid coordinate, and :meth:`PrimitiveEnvironment.send_to_leader`, which
  addresses "a level-i leader as a logical entity" (Section 3.2).  Each
  call is charged to the cost model and queued for delivery, so simple
  algorithms can be written directly against the primitives without the
  rule-program machinery.
* **Collective primitives** — gather/broadcast/reduce over a hierarchical
  group, in the spirit of the UW-API the related-work section discusses.
  Collectives return a :class:`CollectiveReport` with energy/latency so an
  algorithm designer can compose first-order estimates.

The implementation of every primitive is transparent to the end user, who
is "aware only of their functionality and associated costs" — the
simulated/deployed implementations in ``repro.runtime`` realize the same
semantics over the physical network.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .coords import GridCoord
from .cost_model import CostModel, EnergyLedger, UniformCostModel
from .groups import HierarchicalGroups
from .network_model import OrientedGrid


@dataclass
class Envelope:
    """A delivered primitive-level message: sender, payload, size."""

    sender: GridCoord
    payload: Any
    size_units: float = 1.0


@dataclass
class CollectiveReport:
    """Cost summary of one collective operation.

    ``latency`` is the slowest member's path latency (members act in
    parallel); ``energy`` the network total; ``messages`` the logical
    message count.
    """

    latency: float
    energy: float
    messages: int


class PrimitiveEnvironment:
    """Design-time realization of the primitives over an oriented grid.

    Messages are relayed along XY shortest paths; each hop is charged
    tx + rx on the ledger.  Delivery is immediate in program order (the
    design-time environment models cost, not interleaving — use the
    simulator backends for timing-sensitive studies).

    Parameters
    ----------
    grid:
        The virtual topology.
    groups:
        Group middleware for the leader-addressed and collective
        primitives; constructed with defaults if omitted.
    cost_model:
        Defaults to the paper's uniform model.
    """

    def __init__(
        self,
        grid: OrientedGrid,
        groups: Optional[HierarchicalGroups] = None,
        cost_model: Optional[CostModel] = None,
    ):
        self.grid = grid
        self.groups = groups or HierarchicalGroups(grid)
        if self.groups.grid is not grid and self.groups.grid != grid:
            raise ValueError("groups middleware must be built on the same grid")
        self.cost_model = cost_model or UniformCostModel()
        self.ledger = EnergyLedger()
        self._inboxes: Dict[GridCoord, Deque[Envelope]] = {}
        self.messages_sent = 0

    # -- node primitives -------------------------------------------------------

    def send(
        self,
        src: GridCoord,
        dst: GridCoord,
        payload: Any,
        size_units: float = 1.0,
    ) -> float:
        """Point-to-point ``send()``: relay ``payload`` from ``src`` to
        ``dst`` along the XY route, charging every hop.  Returns the path
        latency of the transfer."""
        self.grid.validate_member(src)
        self.grid.validate_member(dst)
        if size_units < 0:
            raise ValueError("size_units must be non-negative")
        cm = self.cost_model
        path = self.grid.route(src, dst)
        for a, b in zip(path, path[1:]):
            self.ledger.charge(a, cm.tx_energy(size_units), "tx")
            self.ledger.charge(b, cm.rx_energy(size_units), "rx")
        self._inboxes.setdefault(dst, deque()).append(
            Envelope(sender=src, payload=payload, size_units=size_units)
        )
        self.messages_sent += 1
        return cm.path_latency(size_units, len(path) - 1)

    def send_to_leader(
        self,
        src: GridCoord,
        level: int,
        payload: Any,
        size_units: float = 1.0,
    ) -> float:
        """Group-communication primitive: address the level-``level``
        leader of ``src``'s group as a logical entity (Section 3.2)."""
        dst = self.groups.leader(src, level)
        return self.send(src, dst, payload, size_units)

    def receive(self, node: GridCoord) -> Optional[Envelope]:
        """``receive()``: pop the oldest pending envelope at ``node``
        (None when the inbox is empty — the asynchronous model never
        blocks)."""
        self.grid.validate_member(node)
        inbox = self._inboxes.get(node)
        if not inbox:
            return None
        return inbox.popleft()

    def pending(self, node: GridCoord) -> int:
        """Number of undelivered envelopes queued at ``node``."""
        return len(self._inboxes.get(node, ()))

    # -- collective primitives ----------------------------------------------------

    def gather_to_leader(
        self,
        member: GridCoord,
        level: int,
        value_of: Callable[[GridCoord], Any],
        size_units: float = 1.0,
    ) -> Tuple[List[Envelope], CollectiveReport]:
        """All followers of the level-``level`` group containing ``member``
        send their value to the leader; returns the leader's envelopes
        (own value included, zero-cost) and the cost report."""
        leader = self.groups.leader(member, level)
        latency = 0.0
        energy_before = self.ledger.total
        count = 0
        for m in self.groups.members(member, level):
            if m == leader:
                self._inboxes.setdefault(leader, deque()).append(
                    Envelope(sender=m, payload=value_of(m), size_units=0.0)
                )
                continue
            latency = max(latency, self.send(m, leader, value_of(m), size_units))
            count += 1
        envelopes = list(self._inboxes[leader])
        self._inboxes[leader].clear()
        return envelopes, CollectiveReport(
            latency=latency,
            energy=self.ledger.total - energy_before,
            messages=count,
        )

    def broadcast_from_leader(
        self,
        member: GridCoord,
        level: int,
        payload: Any,
        size_units: float = 1.0,
    ) -> CollectiveReport:
        """The leader of the level-``level`` group sends ``payload`` to
        every follower (unicast per member over the grid — the design-time
        cost; radio broadcast optimizations belong to the runtime)."""
        leader = self.groups.leader(member, level)
        latency = 0.0
        energy_before = self.ledger.total
        count = 0
        for m in self.groups.members(member, level):
            if m == leader:
                continue
            latency = max(latency, self.send(leader, m, payload, size_units))
            count += 1
        return CollectiveReport(
            latency=latency,
            energy=self.ledger.total - energy_before,
            messages=count,
        )

    def barrier(
        self,
        member: GridCoord,
        level: int,
        size_units: float = 1.0,
    ) -> CollectiveReport:
        """Barrier synchronization across a hierarchical group.

        The related-work UW-API supports *"barrier synchronization for the
        sensor nodes that lie within a region"*; on the virtual
        architecture a barrier is a gather of empty tokens to the leader
        followed by a release broadcast.  Returns the combined cost; the
        latency is the time by which every member has observed the
        release.
        """
        leader = self.groups.leader(member, level)
        energy_before = self.ledger.total
        up_latency = 0.0
        messages = 0
        for m in self.groups.members(member, level):
            if m == leader:
                continue
            up_latency = max(up_latency, self.send(m, leader, None, size_units))
            self.receive(leader)  # tokens carry no payload
            messages += 1
        down = self.broadcast_from_leader(member, level, None, size_units)
        # drain the release tokens
        for m in self.groups.members(member, level):
            if m != leader:
                self.receive(m)
        return CollectiveReport(
            latency=up_latency + down.latency,
            energy=self.ledger.total - energy_before,
            messages=messages + down.messages,
        )

    def reduce_to_leader(
        self,
        member: GridCoord,
        level: int,
        value_of: Callable[[GridCoord], float],
        combine: Callable[[float, float], float],
        size_units: float = 1.0,
    ) -> Tuple[float, CollectiveReport]:
        """Hierarchical reduction within one group: values flow up the
        sub-hierarchy level by level, combined at every intermediate
        leader (the energy-efficient counterpart of a flat gather).

        Returns ``(reduced value, report)``.
        """
        cm = self.cost_model
        top_leader = self.groups.leader(member, level)
        energy_before = self.ledger.total
        messages = 0
        latency_at: Dict[GridCoord, float] = {}
        value_at: Dict[GridCoord, float] = {}
        for m in self.groups.members(member, level):
            value_at[m] = value_of(m)
            latency_at[m] = 0.0

        for k in range(1, level + 1):
            # group current holders by their level-k leader
            by_leader: Dict[GridCoord, List[GridCoord]] = {}
            for h in value_at:
                by_leader.setdefault(self.groups.leader(h, k), []).append(h)
            next_value: Dict[GridCoord, float] = {}
            next_latency: Dict[GridCoord, float] = {}
            for lead, holders in by_leader.items():
                acc: Optional[float] = None
                lat = 0.0
                if lead in value_at:
                    acc = value_at[lead]
                    lat = latency_at[lead]
                for h in holders:
                    if h == lead:
                        continue
                    send_latency = self.send(h, lead, value_at[h], size_units)
                    messages += 1
                    acc = value_at[h] if acc is None else combine(acc, value_at[h])
                    lat = max(lat, latency_at[h] + send_latency)
                    # drain the bookkeeping inbox entry created by send()
                    self.receive(lead)
                assert acc is not None
                next_value[lead] = acc
                next_latency[lead] = lat
            value_at = next_value
            latency_at = next_latency

        return value_at[top_leader], CollectiveReport(
            latency=latency_at[top_leader],
            energy=self.ledger.total - energy_before,
            messages=messages,
        )
