"""Grid coordinates, orientation, and Morton (Z-order) indexing.

The virtual architecture of the paper exports an *oriented* two-dimensional
grid (Section 3.2).  Throughout this library a grid coordinate is the pair
``(x, y)`` where

* ``x`` increases **eastward** (left to right), and
* ``y`` increases **southward** (top to bottom),

so ``(0, 0)`` is the **north-west** corner of the grid.  This screen-style
convention makes the paper's "north-west corner of a block is the leader"
rule a simple componentwise minimum and keeps every derived quantity
monotone.

The node numbering used in the paper's Figures 2 and 3 (quad-tree leaves
``0..15`` laid out as 2x2 blocks of consecutive indices) is exactly the
Morton / Z-order curve over ``(x, y)`` with ``x`` contributing the even
bits; :func:`morton_encode` / :func:`morton_decode` reproduce it.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Sequence, Tuple

GridCoord = Tuple[int, int]
"""A virtual-grid coordinate ``(x, y)``; ``(0, 0)`` is the north-west corner."""


class Direction(enum.Enum):
    """The four directions of the oriented grid (Section 5.1's ``DIR`` set).

    The value of each member is the unit step ``(dx, dy)`` it induces in
    grid coordinates under the north-west-origin convention.
    """

    NORTH = (0, -1)
    SOUTH = (0, 1)
    EAST = (1, 0)
    WEST = (-1, 0)

    @property
    def dx(self) -> int:
        """Step in the ``x`` (east-west) axis."""
        return self.value[0]

    @property
    def dy(self) -> int:
        """Step in the ``y`` (north-south) axis."""
        return self.value[1]

    @property
    def opposite(self) -> "Direction":
        """The reverse direction (``NORTH`` <-> ``SOUTH``, ``EAST`` <-> ``WEST``)."""
        return _OPPOSITES[self]

    def step(self, coord: GridCoord, distance: int = 1) -> GridCoord:
        """Return ``coord`` moved ``distance`` cells in this direction."""
        x, y = coord
        return (x + self.dx * distance, y + self.dy * distance)


_OPPOSITES = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}

#: All four directions in deterministic N, S, E, W order.
ALL_DIRECTIONS: Tuple[Direction, ...] = (
    Direction.NORTH,
    Direction.SOUTH,
    Direction.EAST,
    Direction.WEST,
)


def manhattan(a: GridCoord, b: GridCoord) -> int:
    """Hop distance between two grid coordinates under 4-neighbour routing.

    Section 4.2 defines the member-to-leader communication cost as
    proportional to "the minimum number of hops separating them in the
    virtual network graph, assuming shortest path routing"; on the oriented
    grid that is the Manhattan (L1) distance.
    """
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def chebyshev(a: GridCoord, b: GridCoord) -> int:
    """L-infinity distance between two grid coordinates."""
    return max(abs(a[0] - b[0]), abs(a[1] - b[1]))


def neighbors4(coord: GridCoord) -> List[GridCoord]:
    """The four edge-adjacent coordinates of ``coord`` (may fall off-grid)."""
    x, y = coord
    return [(x, y - 1), (x, y + 1), (x + 1, y), (x - 1, y)]


def direction_between(src: GridCoord, dst: GridCoord) -> Direction:
    """Direction of the single-axis step from ``src`` to an adjacent ``dst``.

    Raises :class:`ValueError` if the two coordinates are not 4-adjacent.
    """
    dx, dy = dst[0] - src[0], dst[1] - src[1]
    for d in ALL_DIRECTIONS:
        if (dx, dy) == d.value:
            return d
    raise ValueError(f"{src!r} and {dst!r} are not 4-adjacent")


def xy_route(src: GridCoord, dst: GridCoord) -> List[GridCoord]:
    """Dimension-ordered (XY) shortest route from ``src`` to ``dst``, inclusive.

    Moves along the x axis first, then the y axis — the canonical
    deterministic shortest-path routing on an oriented grid.  The returned
    list starts with ``src`` and ends with ``dst`` and has
    ``manhattan(src, dst) + 1`` entries.
    """
    path = [src]
    x, y = src
    step_x = 1 if dst[0] > x else -1
    while x != dst[0]:
        x += step_x
        path.append((x, y))
    step_y = 1 if dst[1] > y else -1
    while y != dst[1]:
        y += step_y
        path.append((x, y))
    return path


def _part1by1(n: int) -> int:
    """Spread the low 32 bits of ``n`` so bit *i* lands at position *2i*."""
    n &= 0xFFFFFFFF
    n = (n | (n << 16)) & 0x0000FFFF0000FFFF
    n = (n | (n << 8)) & 0x00FF00FF00FF00FF
    n = (n | (n << 4)) & 0x0F0F0F0F0F0F0F0F
    n = (n | (n << 2)) & 0x3333333333333333
    n = (n | (n << 1)) & 0x5555555555555555
    return n


def _compact1by1(n: int) -> int:
    """Inverse of :func:`_part1by1`: gather every other bit of ``n``."""
    n &= 0x5555555555555555
    n = (n | (n >> 1)) & 0x3333333333333333
    n = (n | (n >> 2)) & 0x0F0F0F0F0F0F0F0F
    n = (n | (n >> 4)) & 0x00FF00FF00FF00FF
    n = (n | (n >> 8)) & 0x0000FFFF0000FFFF
    n = (n | (n >> 16)) & 0x00000000FFFFFFFF
    return n


def morton_encode(coord: GridCoord) -> int:
    """Morton (Z-order) index of a grid coordinate.

    ``x`` occupies the even bits and ``y`` the odd bits, which reproduces
    the paper's Figure 3 numbering: on a 4x4 grid the 2x2 north-west block
    holds indices ``{0, 1, 2, 3}``, the north-east block ``{4, 5, 6, 7}``,
    and so on — the same recursive-quadrant order as the quad-tree of
    Figure 2.
    """
    x, y = coord
    if x < 0 or y < 0:
        raise ValueError(f"Morton encoding requires non-negative coords, got {coord!r}")
    return _part1by1(x) | (_part1by1(y) << 1)


def morton_decode(index: int) -> GridCoord:
    """Inverse of :func:`morton_encode`."""
    if index < 0:
        raise ValueError(f"Morton index must be non-negative, got {index}")
    return (_compact1by1(index), _compact1by1(index >> 1))


def morton_order(side: int) -> Iterator[GridCoord]:
    """Iterate all coordinates of a ``side x side`` grid in Z-order.

    Requires ``side`` to be a power of two (the quad-tree case study's
    assumption that ``log2(sqrt(N))`` is an integer).
    """
    if not is_power_of_two(side):
        raise ValueError(f"side must be a power of two, got {side}")
    for i in range(side * side):
        yield morton_decode(i)


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive integral power of two."""
    return n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Exact integer base-2 logarithm; raises if ``n`` is not a power of two."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1


def block_leader(coord: GridCoord, level: int, branching: int = 2) -> GridCoord:
    """North-west corner of the level-``level`` block containing ``coord``.

    The hierarchical-groups middleware (Section 3.2) partitions the grid at
    level *k* into blocks of ``branching**k x branching**k`` nodes and
    designates the node in the north-west corner as the level-*k* leader.
    Level 0 makes every node its own leader.
    """
    if level < 0:
        raise ValueError(f"level must be non-negative, got {level}")
    block = branching**level
    x, y = coord
    return (x - x % block, y - y % block)


def block_members(
    leader: GridCoord, level: int, branching: int = 2
) -> List[GridCoord]:
    """All coordinates of the level-``level`` block led by ``leader``.

    ``leader`` must itself be a level-``level`` leader (i.e. a block
    corner); raises :class:`ValueError` otherwise.
    """
    block = branching**level
    x0, y0 = leader
    if x0 % block or y0 % block:
        raise ValueError(f"{leader!r} is not a level-{level} leader")
    return [(x0 + dx, y0 + dy) for dy in range(block) for dx in range(block)]


def coords_in_rect(x0: int, y0: int, width: int, height: int) -> Iterator[GridCoord]:
    """Iterate coordinates of the axis-aligned rectangle row-major."""
    for y in range(y0, y0 + height):
        for x in range(x0, x0 + width):
            yield (x, y)


def validate_coord(coord: object) -> GridCoord:
    """Check that ``coord`` is an ``(int, int)`` pair and return it typed.

    Used at public API boundaries so that user errors surface with a clear
    message instead of deep inside a protocol run.
    """
    if (
        not isinstance(coord, tuple)
        or len(coord) != 2
        or not all(isinstance(c, int) for c in coord)
    ):
        raise TypeError(f"grid coordinate must be an (int, int) tuple, got {coord!r}")
    return coord  # type: ignore[return-value]
