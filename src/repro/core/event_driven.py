"""Event-driven application model: probabilistic activation analysis.

Section 4.1: the task-graph model *"might not be suitable for event-driven
applications such as target tracking where only the sensor nodes in the
vicinity of the target (event) perform the sampling ... If a task graph
model has to be used for this scenario, the frequency of sampling at the
leaf nodes could be expressed in probabilistic terms derived from a
knowledge of expected events in the network."*

This module implements exactly that extension:

* :func:`expected_quadtree_cost` — closed-form *expected* energy/traffic of
  the quad-tree reduction when each leaf is active independently with
  probability *p* and inactive leaves contribute nothing (a level-*k*
  merge fires only if its block contains at least one active leaf).
* :class:`EventDrivenAggregation` — an aggregation wrapper that suppresses
  transmissions from fully inactive subtrees, so the executor *measures*
  the same quantity the analysis predicts.
* :func:`simulate_event_activations` — seeded sampling of activation sets
  around point events (targets) for the tracking scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .coords import GridCoord, ilog2, is_power_of_two
from .cost_model import CostModel, UniformCostModel
from .synthesis import Aggregation


@dataclass(frozen=True)
class ExpectedCost:
    """Expected per-round cost of the probabilistically-activated reduction.

    ``expected_messages`` counts only messages from blocks containing at
    least one active leaf; ``expected_hop_units`` and ``expected_energy``
    weight them by path length and the cost model.
    """

    activation_probability: float
    expected_messages: float
    expected_hop_units: float
    expected_energy: float


def expected_quadtree_cost(
    side: int,
    activation_probability: float,
    cost_model: Optional[CostModel] = None,
    units_per_message: float = 1.0,
) -> ExpectedCost:
    """Expected cost when each leaf samples with probability *p*.

    A level-*k* child block (side ``2**(k-1)``) transmits iff at least one
    of its ``4**(k-1)`` leaves is active: probability
    ``q_k = 1 - (1 - p) ** (4 ** (k-1))``.  Summing over the three external
    children of every level-*k* group (hop distances ``h, h, 2h``,
    ``h = 2**(k-1)``) gives the expected traffic; at ``p = 1`` this reduces
    exactly to the deterministic closed form of
    :func:`repro.core.analysis.estimate_quadtree`.
    """
    if not is_power_of_two(side):
        raise ValueError(f"side must be a power of two, got {side}")
    if not 0.0 <= activation_probability <= 1.0:
        raise ValueError("activation_probability must be in [0, 1]")
    cm = cost_model or UniformCostModel()
    p = activation_probability
    m = ilog2(side)
    s = units_per_message

    exp_messages = 0.0
    exp_hops = 0.0
    for k in range(1, m + 1):
        leaves_per_child = 4 ** (k - 1)
        q = 1.0 - (1.0 - p) ** leaves_per_child
        h = 2 ** (k - 1)
        groups = 4 ** (m - k)
        exp_messages += groups * 3 * q
        exp_hops += groups * q * (h + h + 2 * h) * s
    energy = cm.tx_energy(1.0) * exp_hops + cm.rx_energy(1.0) * exp_hops
    return ExpectedCost(
        activation_probability=p,
        expected_messages=exp_messages,
        expected_hop_units=exp_hops,
        expected_energy=energy,
    )


class EventDrivenAggregation(Aggregation):
    """Wrap an *algebraic* aggregation so inactive subtrees stay silent.

    ``active`` marks which leaves sampled this round.  An inactive leaf
    produces the sentinel ``None`` payload; accumulators ignore ``None``;
    a finalized accumulator that saw no active contribution finalizes to
    ``None`` again, and messages carrying ``None`` are given size 0 — the
    executor still routes them (the control skeleton is oblivious), but
    they cost nothing, matching the paper's "only the sensor nodes in the
    vicinity of the target perform the sampling and in-network
    collaborative signal processing".

    Suitable for count/sum/max/histogram-style aggregations whose merge
    is indifferent to missing contributions.  It is **not** suitable for
    the boundary-merging region aggregation, whose accumulators require a
    complete tiling — for region labeling under partial activation,
    express inactivity in the feature predicate instead
    (``feature = active(c) and reading_above_threshold(c)``), which is
    also the physically accurate model: an unsampled PoC is simply not a
    feature node for the query.
    """

    def __init__(self, inner: Aggregation, active: Callable[[GridCoord], bool]):
        self.inner = inner
        self.active = active

    def local(self, coord: GridCoord) -> Any:
        if not self.active(coord):
            return None
        return self.inner.local(coord)

    def make_accumulator(self, corner: GridCoord, level: int) -> Any:
        return {"acc": None, "corner": corner, "level": level}

    def merge(self, accumulator: Dict[str, Any], payload: Any) -> None:
        if payload is None:
            return
        if accumulator["acc"] is None:
            accumulator["acc"] = self.inner.make_accumulator(
                accumulator["corner"], accumulator["level"]
            )
        self.inner.merge(accumulator["acc"], payload)

    def finalize(self, accumulator: Any) -> Any:
        if accumulator is None:
            return None
        if isinstance(accumulator, dict) and "acc" in accumulator:
            if accumulator["acc"] is None:
                return None
            return self.inner.finalize(accumulator["acc"])
        # level-0 value passes through
        return self.inner.finalize(accumulator)

    def size_of(self, payload: Any) -> float:
        if payload is None:
            return 0.0
        return self.inner.size_of(payload)

    def local_operations(self, coord: GridCoord) -> float:
        if not self.active(coord):
            return 0.0
        return self.inner.local_operations(coord)

    def merge_operations(self, payload: Any) -> float:
        if payload is None:
            return 0.0
        return self.inner.merge_operations(payload)


def simulate_event_activations(
    side: int,
    n_events: int,
    vicinity_radius: float,
    rng: "np.random.Generator | int | None" = None,
) -> Set[GridCoord]:
    """Activation set for a tracking round: leaves within
    ``vicinity_radius`` (grid cells, Euclidean) of any of ``n_events``
    uniformly random targets sample; the rest stay idle."""
    if n_events < 0:
        raise ValueError("n_events must be non-negative")
    if vicinity_radius < 0:
        raise ValueError("vicinity_radius must be non-negative")
    r = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    targets = [(r.uniform(0, side), r.uniform(0, side)) for _ in range(n_events)]
    active: Set[GridCoord] = set()
    for x in range(side):
        for y in range(side):
            cx, cy = x + 0.5, y + 0.5
            for tx, ty in targets:
                if math.hypot(cx - tx, cy - ty) <= vicinity_radius:
                    active.add((x, y))
                    break
    return active
