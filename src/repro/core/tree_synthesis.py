"""Synthesis and execution over the tree virtual topology.

Section 3.2: *"A grid will be an appropriate choice of virtual topology for
uniform node deployment over the terrain.  For non-uniform deployments,
other virtual topologies such as a tree could be more appropriate."*

This module completes that alternative: the same reactive-program synthesis
applied to a :class:`~repro.core.network_model.VirtualTree` — leaves sense,
interior nodes merge the summaries of their children, the root exfiltrates.
The rule set mirrors Figure 4 with ``Leader(recLevel)`` replaced by the
tree parent and the expected message count by the node's child count; the
aggregation interface is shared, so any :class:`Aggregation` (counts,
sums, boundary merging with appropriately assigned regions) runs unchanged
on either topology.

:class:`TreeExecutor` drives one round with the same event-driven cost
accounting as the grid executor (messages travel one tree edge per hop).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .coords import GridCoord
from .cost_model import CostModel, EnergyLedger, UniformCostModel
from .executor import ExecutionResult
from .network_model import VirtualTree
from .program import Context, Message, NodeProgram, Rule
from .synthesis import MGRAPH, Aggregation


@dataclass
class TreeProgramSpec:
    """Synthesized reduction program over a virtual tree.

    ``program_for`` instantiates the per-node rule program; addresses are
    the tree's ``(level, index)`` pairs.
    """

    tree: VirtualTree
    aggregation: Aggregation

    def program_for(self, addr: GridCoord) -> NodeProgram:
        """The node program for tree address ``addr``."""
        self.tree.validate_member(addr)
        return _build_tree_program(self, addr)


def synthesize_tree_program(
    tree: VirtualTree, aggregation: Aggregation
) -> TreeProgramSpec:
    """Synthesize the reduction program for every node of ``tree``."""
    return TreeProgramSpec(tree=tree, aggregation=aggregation)


def _build_tree_program(spec: TreeProgramSpec, addr: GridCoord) -> NodeProgram:
    tree = spec.tree
    agg = spec.aggregation
    children = tree.children(addr)
    parent = tree.parent(addr)
    is_leaf = not children

    state: Dict[str, Any] = {
        "start": False,
        "transmit": False,
        "myAddr": addr,
        "mySubGraph": None,
        "msgsReceived": 0,
        "sensed": False,
        "done": False,
        "exfiltrated": None,
    }

    def cond_start(ctx: Context) -> bool:
        return bool(ctx.state["start"]) and not ctx.state["done"]

    def act_start(ctx: Context) -> None:
        st = ctx.state
        st["start"] = False
        st["sensed"] = True
        if is_leaf:
            st["mySubGraph"] = agg.local(addr)
            st["transmit"] = True
            ctx.charge(agg.local_operations(addr))
        else:
            # interior tree nodes are pure merge points: they aggregate
            # children; sensing happens at the leaves only (Section 4.1's
            # "only the leaf nodes perform the actual sampling")
            st["mySubGraph"] = agg.make_accumulator(addr, addr[0])

    def cond_receive(ctx: Context) -> bool:
        return ctx.message is not None and ctx.message.kind == MGRAPH

    def act_receive(ctx: Context) -> None:
        st = ctx.state
        msg = ctx.message
        assert msg is not None
        if st["mySubGraph"] is None:
            st["mySubGraph"] = agg.make_accumulator(addr, addr[0])
        agg.merge(st["mySubGraph"], msg.payload)
        st["msgsReceived"] += 1
        ctx.charge(agg.merge_operations(msg.payload))

    def cond_complete(ctx: Context) -> bool:
        st = ctx.state
        return (
            not is_leaf
            and not st["transmit"]
            and not st["done"]
            and st["sensed"]
            and st["msgsReceived"] >= len(children)
        )

    def act_complete(ctx: Context) -> None:
        ctx.state["transmit"] = True

    def cond_transmit(ctx: Context) -> bool:
        return bool(ctx.state["transmit"])

    def act_transmit(ctx: Context) -> None:
        st = ctx.state
        st["transmit"] = False
        payload = (
            st["mySubGraph"]
            if is_leaf
            else agg.finalize(st["mySubGraph"])
        )
        if parent is None:
            st["exfiltrated"] = payload
            st["done"] = True
            ctx.exfiltrate(payload)
            return
        ctx.send(
            parent,
            Message(
                kind=MGRAPH,
                sender=addr,
                payload=payload,
                level=addr[0],
                size_units=agg.size_of(payload),
            ),
        )
        st["done"] = True

    rules = [
        Rule("start", cond_start, act_start),
        Rule("transmit", cond_transmit, act_transmit),
        Rule("receive-mGraph", cond_receive, act_receive, consumes_message=True),
        Rule("advance", cond_complete, act_complete),
    ]
    return NodeProgram(rules, state)


class TreeExecutor:
    """Event-driven execution of a :class:`TreeProgramSpec`.

    Messages travel one tree edge (hop) per ``tx_latency(size)``; energy is
    charged tx at the sender and rx at the receiver, per the uniform cost
    model.
    """

    def __init__(
        self,
        spec: TreeProgramSpec,
        cost_model: Optional[CostModel] = None,
        charge_compute: bool = True,
    ):
        self.spec = spec
        self.cost_model = cost_model or UniformCostModel()
        self.charge_compute = charge_compute

    def run(self) -> ExecutionResult:
        """Execute one round: all tree nodes start at t=0."""
        cm = self.cost_model
        tree = self.spec.tree
        ledger = EnergyLedger()
        programs = {addr: self.spec.program_for(addr) for addr in tree.nodes()}
        node_ready: Dict[GridCoord, float] = {a: 0.0 for a in programs}
        exfiltrated: Dict[GridCoord, Any] = {}
        messages = 0
        data_units = 0.0
        hop_units = 0.0
        events = 0
        final_time = 0.0

        queue: List[Tuple[float, int, GridCoord, Optional[Message]]] = []
        seq = 0
        for addr in programs:
            heapq.heappush(queue, (0.0, seq, addr, None))
            seq += 1

        while queue:
            time, _, addr, msg = heapq.heappop(queue)
            events += 1
            begin = max(time, node_ready[addr])
            program = programs[addr]
            effects = program.start() if msg is None else program.deliver(msg)
            ops = sum(e.operations for e in effects)
            if self.charge_compute and ops:
                ledger.charge(addr, cm.compute_energy(ops), "compute")
            finish = begin + (cm.compute_latency(ops) if self.charge_compute else 0.0)
            node_ready[addr] = finish
            final_time = max(final_time, finish)
            for effect in effects:
                if effect.kind == "send":
                    assert effect.destination and effect.message
                    size = effect.message.size_units
                    ledger.charge(addr, cm.tx_energy(size), "tx")
                    ledger.charge(effect.destination, cm.rx_energy(size), "rx")
                    arrival = finish + cm.tx_latency(size)
                    heapq.heappush(
                        queue, (arrival, seq, effect.destination, effect.message)
                    )
                    seq += 1
                    messages += 1
                    data_units += size
                    hop_units += size
                elif effect.kind == "exfiltrate":
                    exfiltrated[addr] = effect.payload

        latency = (
            max((node_ready[a] for a in exfiltrated), default=final_time)
            if exfiltrated
            else final_time
        )
        return ExecutionResult(
            exfiltrated=exfiltrated,
            ledger=ledger,
            latency=latency,
            messages=messages,
            data_units=data_units,
            hop_units=hop_units,
            events=events,
        )


def execute_tree_round(
    spec: TreeProgramSpec,
    cost_model: Optional[CostModel] = None,
    charge_compute: bool = True,
) -> ExecutionResult:
    """Convenience wrapper: one tree-reduction round."""
    return TreeExecutor(
        spec, cost_model=cost_model, charge_compute=charge_compute
    ).run()
