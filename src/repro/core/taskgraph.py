"""Architecture-independent application model: annotated task graphs.

Section 2: *"the algorithm is specified using an architecture-independent
application model such as an annotated task graph.  The application graph
is used as an input to a mapping tool ..."*.  Section 4.1 represents the
case-study algorithm as *"a data flow graph structured as a quad-tree
(Figure 2).  A leaf node corresponds to a task that is linked to the
sensing interface, and interior nodes represent in-network processing on
the sampled data."*

This module provides the generic :class:`TaskGraph` DAG with per-task and
per-edge annotations, plus :func:`build_quadtree` which constructs exactly
the Figure 2 graph (task ids are the Morton indices of the grid regions the
tasks oversee, reproducing the paper's node labels 0..15 / {0, 4, 8, 12} /
{0} for a 4x4 grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .coords import morton_encode
from .network_model import OrientedGrid

#: Task kinds distinguished by the synthesis stage.
SENSING = "sensing"
PROCESSING = "processing"
SINK = "sink"


@dataclass(frozen=True)
class TaskId:
    """Identity of a task: ``(level, index)``.

    ``level`` is the task's height in the reduction hierarchy (0 for
    sensing leaves) and ``index`` is unique within the level.  For
    quad-tree graphs the index is the Morton index of the task's region,
    matching Figure 2's node labels.
    """

    level: int
    index: int

    def __repr__(self) -> str:
        return f"T{self.level}.{self.index}"


@dataclass
class Task:
    """One vertex of the application task graph.

    Attributes
    ----------
    tid:
        Unique :class:`TaskId`.
    kind:
        ``"sensing"`` (linked to the sensing interface), ``"processing"``
        (in-network computation), or ``"sink"`` (exfiltration point).
    region:
        Optional geographic extent annotation
        ``(x0, y0, width, height)`` in virtual-grid cells: the oversight of
        the task.  The mapping stage uses it to check the spatial
        correlation constraint.
    annotations:
        Free-form designer annotations (e.g. expected output data units,
        compute operations per input unit) consumed by the cost analysis.
    """

    tid: TaskId
    kind: str = PROCESSING
    region: Optional[Tuple[int, int, int, int]] = None
    annotations: Dict[str, float] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.tid)


class TaskGraph:
    """A directed acyclic data-flow graph of :class:`Task` vertices.

    Edges point from producer (child in the reduction tree) to consumer
    (parent).  Each edge may carry a ``data_units`` annotation used in
    first-order performance estimation.
    """

    def __init__(self) -> None:
        self._tasks: Dict[TaskId, Task] = {}
        self._succ: Dict[TaskId, List[TaskId]] = {}
        self._pred: Dict[TaskId, List[TaskId]] = {}
        self._edge_units: Dict[Tuple[TaskId, TaskId], float] = {}

    # -- construction -------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        """Insert a task; raises on duplicate id."""
        if task.tid in self._tasks:
            raise ValueError(f"duplicate task id {task.tid!r}")
        self._tasks[task.tid] = task
        self._succ[task.tid] = []
        self._pred[task.tid] = []
        return task

    def add_edge(self, src: TaskId, dst: TaskId, data_units: float = 1.0) -> None:
        """Add a data-flow edge ``src -> dst`` annotated with ``data_units``."""
        if src not in self._tasks or dst not in self._tasks:
            raise KeyError(f"both endpoints must exist: {src!r} -> {dst!r}")
        if src == dst:
            raise ValueError(f"self edge on {src!r}")
        if dst in self._succ[src]:
            raise ValueError(f"duplicate edge {src!r} -> {dst!r}")
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        self._edge_units[(src, dst)] = data_units
        if self._has_cycle_from(dst):
            # roll back to preserve the DAG invariant
            self._succ[src].remove(dst)
            self._pred[dst].remove(src)
            del self._edge_units[(src, dst)]
            raise ValueError(f"edge {src!r} -> {dst!r} would create a cycle")

    def _has_cycle_from(self, start: TaskId) -> bool:
        seen: Set[TaskId] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in self._succ[node]:
                if nxt == start:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, tid: TaskId) -> bool:
        return tid in self._tasks

    def task(self, tid: TaskId) -> Task:
        """Look up a task by id."""
        return self._tasks[tid]

    def tasks(self) -> Iterator[Task]:
        """Iterate all tasks (insertion order)."""
        return iter(self._tasks.values())

    def successors(self, tid: TaskId) -> List[TaskId]:
        """Consumers of ``tid``'s output (its parents in the reduction)."""
        return list(self._succ[tid])

    def predecessors(self, tid: TaskId) -> List[TaskId]:
        """Producers feeding ``tid`` (its children in the reduction)."""
        return list(self._pred[tid])

    def edge_units(self, src: TaskId, dst: TaskId) -> float:
        """The ``data_units`` annotation of an edge."""
        return self._edge_units[(src, dst)]

    def edges(self) -> Iterator[Tuple[TaskId, TaskId, float]]:
        """Iterate ``(src, dst, data_units)`` triples."""
        for (src, dst), units in self._edge_units.items():
            yield src, dst, units

    def leaves(self) -> List[Task]:
        """Tasks with no predecessors (the sensing tasks of Figure 2)."""
        return [t for t in self._tasks.values() if not self._pred[t.tid]]

    def roots(self) -> List[Task]:
        """Tasks with no successors (exfiltration points)."""
        return [t for t in self._tasks.values() if not self._succ[t.tid]]

    def sensing_tasks(self) -> List[Task]:
        """All tasks of kind ``"sensing"``."""
        return [t for t in self._tasks.values() if t.kind == SENSING]

    def levels(self) -> List[List[Task]]:
        """Tasks grouped by ``tid.level``, ascending."""
        by_level: Dict[int, List[Task]] = {}
        for t in self._tasks.values():
            by_level.setdefault(t.tid.level, []).append(t)
        return [by_level[k] for k in sorted(by_level)]

    def topological_order(self) -> List[Task]:
        """Kahn topological order (children before parents)."""
        indeg = {tid: len(self._pred[tid]) for tid in self._tasks}
        frontier = [tid for tid, d in indeg.items() if d == 0]
        order: List[Task] = []
        while frontier:
            tid = frontier.pop()
            order.append(self._tasks[tid])
            for nxt in self._succ[tid]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    frontier.append(nxt)
        if len(order) != len(self._tasks):
            raise RuntimeError("task graph contains a cycle")
        return order

    def is_tree(self) -> bool:
        """True iff every task has at most one successor and there is a
        single root — the shape the synthesis stage expects."""
        if len(self.roots()) != 1:
            return False
        return all(len(self._succ[tid]) <= 1 for tid in self._tasks)

    def arity(self) -> Optional[int]:
        """If every interior task has the same number of predecessors,
        return it; else None.  The paper's synthesis keys on this: a k-ary
        tree maps onto the group-communication middleware."""
        degrees = {
            len(self._pred[tid])
            for tid in self._tasks
            if self._pred[tid]
        }
        if len(degrees) == 1:
            return degrees.pop()
        return None

    def validate(self) -> None:
        """Raise :class:`ValueError` on structural problems.

        Checks: non-empty; acyclic (by construction); every sensing task is
        a leaf; region annotations of a parent cover its children.
        """
        if not self._tasks:
            raise ValueError("task graph is empty")
        for t in self._tasks.values():
            if t.kind == SENSING and self._pred[t.tid]:
                raise ValueError(f"sensing task {t.tid!r} has predecessors")
            if t.region is not None:
                for p in self._pred[t.tid]:
                    child = self._tasks[p]
                    if child.region is not None and not _region_contains(
                        t.region, child.region
                    ):
                        raise ValueError(
                            f"region of {t.tid!r} does not cover child {p!r}"
                        )
        self.topological_order()  # raises on cycles


def _region_contains(
    outer: Tuple[int, int, int, int], inner: Tuple[int, int, int, int]
) -> bool:
    ox, oy, ow, oh = outer
    ix, iy, iw, ih = inner
    return ox <= ix and oy <= iy and ix + iw <= ox + ow and iy + ih <= oy + oh


def build_quadtree(grid: OrientedGrid, data_units_per_edge: float = 1.0) -> TaskGraph:
    """Construct the Figure 2 quad-tree task graph for a square grid.

    The grid must be quadtree-compatible (square, power-of-two side).  The
    graph has one level-0 **sensing** task per grid cell and one
    **processing** task per quadrant at each level up to ``log2(side)``;
    the root task is additionally responsible for exfiltration.  Task
    indices are Morton indices of the region's NW corner — for a 4x4 grid
    the leaves are labelled 0..15 and the level-1 tasks 0, 4, 8, 12 exactly
    as printed in Figure 2.

    ``data_units_per_edge`` is the designer's first-order annotation of the
    message size on every child -> parent edge; the boundary-merging
    analysis replaces it with data-dependent sizes at estimation time.
    """
    if not grid.is_quadtree_compatible:
        raise ValueError(
            f"{grid!r} is not square with power-of-two side; "
            "the quad-tree application model requires it (Section 4.1)"
        )
    side = grid.width
    max_level = grid.max_level
    tg = TaskGraph()

    # Level 0: one sensing task per grid cell, id = Morton index.
    for y in range(side):
        for x in range(side):
            tg.add_task(
                Task(
                    tid=TaskId(0, morton_encode((x, y))),
                    kind=SENSING,
                    region=(x, y, 1, 1),
                )
            )

    # Interior levels: one merge task per 2^k block.
    for level in range(1, max_level + 1):
        block = 2**level
        for y in range(0, side, block):
            for x in range(0, side, block):
                kind = PROCESSING if level < max_level else SINK
                parent = Task(
                    tid=TaskId(level, morton_encode((x, y))),
                    kind=kind,
                    region=(x, y, block, block),
                )
                tg.add_task(parent)
                half = block // 2
                for dy in (0, half):
                    for dx in (0, half):
                        child = TaskId(level - 1, morton_encode((x + dx, y + dy)))
                        tg.add_edge(child, parent.tid, data_units_per_edge)
    return tg


def quadtree_ascii(tg: TaskGraph) -> str:
    """Render a quad-tree task graph as indented text (Figure 2 regenerated).

    One line per task, children indented under parents, ids shown as the
    paper's integer labels.
    """
    roots = tg.roots()
    lines: List[str] = []

    def walk(tid: TaskId, depth: int) -> None:
        task = tg.task(tid)
        tag = {SENSING: "sense", PROCESSING: "merge", SINK: "root"}.get(
            task.kind, task.kind
        )
        lines.append(f"{'  ' * depth}[L{tid.level}] {tid.index} ({tag})")
        for child in sorted(tg.predecessors(tid), key=lambda t: t.index):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda t: t.tid.index):
        walk(root.tid, 0)
    return "\n".join(lines)


def build_linear_chain(length: int, data_units_per_edge: float = 1.0) -> TaskGraph:
    """A degenerate pipeline task graph (used in tests and as a non-tree
    counterexample for the mapping constraint checkers)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    tg = TaskGraph()
    prev: Optional[TaskId] = None
    for i in range(length):
        kind = SENSING if i == 0 else (SINK if i == length - 1 else PROCESSING)
        tid = TaskId(i, 0)
        tg.add_task(Task(tid=tid, kind=kind))
        if prev is not None:
            tg.add_edge(prev, tid, data_units_per_edge)
        prev = tid
    return tg
