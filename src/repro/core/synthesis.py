"""Program synthesis: from mapped task graph to per-node rule programs.

Section 4.3 of the paper manually synthesizes the quad-tree algorithm into
the reactive program of **Figure 4**.  This module mechanizes that step —
the direction the paper itself points at (*"a coherent top-down methodology
to simplify and ultimately automate the design and synthesis"*).  Given the
group-formation middleware and an *aggregation* (the data-dependent part:
how local readings are summarized and how summaries merge),
:func:`synthesize_quadtree_program` emits a :class:`SynthesizedProgram`
whose per-node rule sets follow Figure 4:

* ``Condition: start = true`` — compute ``mySubGraph[0]`` from intra-cell
  readings, schedule transmission, advance the recursion level.
* ``Condition: received mGraph`` — incrementally merge the incoming
  summary into ``mySubGraph[mrecLevel]``; count it.
* ``Condition: transmit = true`` — finalize the completed level; either
  exfiltrate (at ``maxrecLevel``) or deliver to ``Leader(recLevel)``.
* ``Condition: msgsReceived[recLevel] = 3`` — a leader that has merged all
  child contributions advances to the next level.

Two clarifications relative to the paper's hand-written sketch (documented
here because EXPERIMENTS.md reports against this implementation):

1. **Leader indexing.**  Figure 4 sends to ``Leader(recLevel+1)`` after
   already incrementing ``recLevel``; applied literally a leaf would
   address a level-2 leader.  We send the completed level-*k* summary to
   ``Leader(k+1)`` exactly once, which is what the surrounding prose
   describes.
2. **The self message.**  The paper notes *"one of the four incoming
   messages in the quad-tree representation is from the node to itself"*
   and expects only 3 radio messages.  We realize the self message as a
   zero-cost local merge of the node's own lower-level summary, so a
   leader's own quadrant data reaches its accumulator without a radio
   transmission.

The synthesis is generic over the leader policy: with non-nested policies
(e.g. :class:`~repro.core.groups.CenterLeaderPolicy`) a node's leadership
levels may have gaps, in which case it forwards its local data to a foreign
leader yet continues to serve as the merge point of a higher level.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .coords import GridCoord
from .groups import HierarchicalGroups
from .program import Context, Message, NodeProgram, Rule

#: Message kind used by the synthesized program (Figure 4's alphabet).
MGRAPH = "mGraph"


class Aggregation(abc.ABC):
    """The data-dependent half of a quad-tree reduction.

    The synthesized control skeleton is identical for any in-network
    reduction; subclasses define what a summary is.  The case study's
    boundary-merging aggregation lives in ``repro.apps.boundary``; simple
    algebraic aggregations (:class:`CountAggregation`, ...) are provided
    below for tests and for non-topographic queries such as the paper's
    "querying the properties of sensor nodes (residual energy levels)".
    """

    @abc.abstractmethod
    def local(self, coord: GridCoord) -> Any:
        """Level-0 summary computed from the node's intra-cell readings."""

    @abc.abstractmethod
    def make_accumulator(self, corner: GridCoord, level: int) -> Any:
        """Fresh accumulator for the level-``level`` block at ``corner``."""

    @abc.abstractmethod
    def merge(self, accumulator: Any, payload: Any) -> None:
        """Merge one child summary into an accumulator (in place).

        Must be order-independent across the children of one block —
        the asynchronous model delivers them in arbitrary order.
        """

    @abc.abstractmethod
    def finalize(self, accumulator: Any) -> Any:
        """Turn a complete accumulator into the payload sent upward."""

    def size_of(self, payload: Any) -> float:
        """Data units of a payload (drives tx cost); default 1."""
        return 1.0

    def local_operations(self, coord: GridCoord) -> float:
        """Compute operations charged for the level-0 summary; default 1."""
        return 1.0

    def merge_operations(self, payload: Any) -> float:
        """Compute operations charged per merge; default ``size_of``."""
        return self.size_of(payload)


@dataclass
class SynthesizedProgram:
    """The output of program synthesis: a program factory per grid node.

    Attributes
    ----------
    groups:
        The middleware instance the program was synthesized against.
    aggregation:
        The plugged-in data aggregation.
    max_level:
        ``maxrecLevel`` — the level whose completion triggers exfiltration.
    """

    groups: HierarchicalGroups
    aggregation: Aggregation
    max_level: int

    def program_for(self, coord: GridCoord) -> NodeProgram:
        """Instantiate the node program for the node at ``coord``."""
        self.groups.grid.validate_member(coord)
        return _build_node_program(self, coord)

    def roles(self, coord: GridCoord) -> Dict[str, Any]:
        """Role metadata for ``coord`` (diagnostics and Figure 4 header)."""
        lead_levels = [
            k
            for k in range(self.max_level + 1)
            if self.groups.is_leader(coord, k)
        ]
        return {
            "coord": coord,
            "lead_levels": lead_levels,
            "is_root": self.groups.is_leader(coord, self.max_level),
            "maxrecLevel": self.max_level,
        }

    def render_figure4(self) -> str:
        """Regenerate the textual program specification of Figure 4."""
        return FIGURE4_TEXT


def synthesize_quadtree_program(
    groups: HierarchicalGroups,
    aggregation: Aggregation,
    max_level: Optional[int] = None,
) -> SynthesizedProgram:
    """Synthesize the Figure 4 program for a grid + middleware + aggregation.

    ``max_level`` defaults to the middleware's top level (full reduction to
    a single root).  A smaller value stops the reduction early, leaving
    per-block results distributed at the level-``max_level`` leaders — the
    "distributed storage nodes" configuration the paper's query discussion
    assumes (Section 3.1).
    """
    if max_level is None:
        max_level = groups.max_level
    if not 0 <= max_level <= groups.max_level:
        raise ValueError(
            f"max_level must be in [0, {groups.max_level}], got {max_level}"
        )
    return SynthesizedProgram(
        groups=groups, aggregation=aggregation, max_level=max_level
    )


# ---------------------------------------------------------------------------
# The synthesized per-node rule set
# ---------------------------------------------------------------------------


def _build_node_program(spec: SynthesizedProgram, coord: GridCoord) -> NodeProgram:
    groups = spec.groups
    agg = spec.aggregation
    max_level = spec.max_level

    lead_levels = [
        k for k in range(max_level + 1) if groups.is_leader(coord, k)
    ]

    # Static per-level expectations (pure functions of the coordinates,
    # as the paper requires: "every node knows its own grid coordinates,
    # [so] it can also determine its role ... at each level").
    external_expected: Dict[int, int] = {}
    own_expected: Dict[int, bool] = {}
    for k in lead_levels:
        if k == 0:
            continue
        children = groups.child_leaders(coord, k)
        external_expected[k] = sum(1 for c in children if c != coord)
        own_expected[k] = coord in children

    state: Dict[str, Any] = {
        "start": False,
        "transmit": False,
        "recLevel": 0,
        "maxrecLevel": max_level,
        "myCoords": coord,
        "mySubGraph": {},  # level -> accumulator
        "msgsReceived": {k: 0 for k in range(max_level + 1)},
        # level -> coords already merged at that level: a leader failover
        # can legitimately re-send a child's summary (the successor adopts
        # the program state-fresh), and merging it twice would corrupt the
        # aggregation — msgsReceived counts *distinct* child senders
        "sendersMerged": {k: set() for k in range(max_level + 1)},
        "ownMerged": {k: False for k in range(max_level + 1)},
        "done": False,
        "exfiltrated": None,
    }

    def _ensure_accumulator(st: Dict[str, Any], level: int) -> Any:
        if level not in st["mySubGraph"]:
            corner = groups.block_corner(coord, level)
            st["mySubGraph"][level] = agg.make_accumulator(corner, level)
        return st["mySubGraph"][level]

    # -- Rule 1: Condition : start = true ------------------------------------
    def cond_start(ctx: Context) -> bool:
        return bool(ctx.state["start"]) and not ctx.state["done"]

    def act_start(ctx: Context) -> None:
        st = ctx.state
        st["start"] = False
        st["mySubGraph"][0] = agg.local(coord)
        st["recLevel"] = 0
        st["transmit"] = True
        ctx.charge(agg.local_operations(coord))

    # -- Rule 2: Condition : received mGraph ----------------------------------
    def cond_receive(ctx: Context) -> bool:
        return ctx.message is not None and ctx.message.kind == MGRAPH

    def act_receive(ctx: Context) -> None:
        st = ctx.state
        msg = ctx.message
        assert msg is not None
        level = msg.level
        senders = st["sendersMerged"][level]
        if msg.sender in senders:
            return  # duplicate child summary (post-failover re-send)
        senders.add(msg.sender)
        accumulator = _ensure_accumulator(st, level)
        agg.merge(accumulator, msg.payload)
        st["msgsReceived"][level] += 1
        ctx.charge(agg.merge_operations(msg.payload))

    # -- Rule 3: Condition : transmit = true ----------------------------------
    def cond_transmit(ctx: Context) -> bool:
        return bool(ctx.state["transmit"])

    def act_transmit(ctx: Context) -> None:
        st = ctx.state
        st["transmit"] = False
        completed = st["recLevel"]
        payload = agg.finalize(st["mySubGraph"][completed])
        if completed == max_level:
            st["exfiltrated"] = payload
            st["done"] = True
            ctx.exfiltrate(payload)
            return
        dest = groups.leader(coord, completed + 1)
        if dest == coord:
            # The paper's "message from the node to itself": a zero-cost
            # local merge of the node's own quadrant summary.
            accumulator = _ensure_accumulator(st, completed + 1)
            agg.merge(accumulator, payload)
            st["ownMerged"][completed + 1] = True
            st["recLevel"] = completed + 1
            ctx.charge(agg.merge_operations(payload))
        else:
            ctx.send(
                dest,
                Message(
                    kind=MGRAPH,
                    sender=coord,
                    payload=payload,
                    level=completed + 1,
                    size_units=agg.size_of(payload),
                ),
            )
            higher = [k for k in lead_levels if k > completed]
            if higher:
                # Non-nested leader policy: this node still anchors a
                # higher merge level despite delegating its local data.
                st["recLevel"] = min(higher)
            else:
                st["done"] = True

    # -- Rule 4: Condition : msgsReceived[recLevel] = 3 ------------------------
    def cond_advance(ctx: Context) -> bool:
        st = ctx.state
        if st["transmit"] or st["done"]:
            return False
        level = st["recLevel"]
        if level < 1 or level not in external_expected:
            return False
        if st["msgsReceived"][level] < external_expected[level]:
            return False
        if own_expected[level] and not st["ownMerged"][level]:
            return False
        return True

    def act_advance(ctx: Context) -> None:
        ctx.state["transmit"] = True

    rules = [
        Rule("start", cond_start, act_start),
        Rule("transmit", cond_transmit, act_transmit),
        Rule("receive-mGraph", cond_receive, act_receive, consumes_message=True),
        Rule("advance-level", cond_advance, act_advance),
    ]
    return NodeProgram(rules, state)


# ---------------------------------------------------------------------------
# Simple algebraic aggregations (tests, node-property queries)
# ---------------------------------------------------------------------------


class CountAggregation(Aggregation):
    """Counts feature nodes: ``local`` is 0/1, ``merge`` is addition.

    ``feature`` maps a grid coordinate to a boolean (is this a feature
    node for the query?).  The exfiltrated root value equals the number of
    feature nodes in the grid — a degenerate topographic query.
    """

    def __init__(self, feature: Callable[[GridCoord], bool]):
        self.feature = feature

    def local(self, coord: GridCoord) -> int:
        return 1 if self.feature(coord) else 0

    def make_accumulator(self, corner: GridCoord, level: int) -> List[int]:
        return [0]

    def merge(self, accumulator: List[int], payload: int) -> None:
        accumulator[0] += payload

    def finalize(self, accumulator: Any) -> int:
        if isinstance(accumulator, list):
            return accumulator[0]
        return accumulator


class MaxAggregation(Aggregation):
    """In-network maximum of per-node readings (e.g. hottest PoC)."""

    def __init__(self, reading: Callable[[GridCoord], float]):
        self.reading = reading

    def local(self, coord: GridCoord) -> float:
        return float(self.reading(coord))

    def make_accumulator(self, corner: GridCoord, level: int) -> List[float]:
        return [float("-inf")]

    def merge(self, accumulator: List[float], payload: float) -> None:
        accumulator[0] = max(accumulator[0], payload)

    def finalize(self, accumulator: Any) -> float:
        if isinstance(accumulator, list):
            return accumulator[0]
        return accumulator


class SumAggregation(Aggregation):
    """In-network sum of per-node values (e.g. residual energy totals)."""

    def __init__(self, value: Callable[[GridCoord], float]):
        self.value = value

    def local(self, coord: GridCoord) -> float:
        return float(self.value(coord))

    def make_accumulator(self, corner: GridCoord, level: int) -> List[float]:
        return [0.0]

    def merge(self, accumulator: List[float], payload: float) -> None:
        accumulator[0] += payload

    def finalize(self, accumulator: Any) -> float:
        if isinstance(accumulator, list):
            return accumulator[0]
        return accumulator


#: The textual program specification of Figure 4, regenerated verbatim
#: (modulo the two documented clarifications) by ``render_figure4``.
FIGURE4_TEXT = """\
State (initial values) :
    start(= false), recLevel(= 0), maxrecLevel,
    mySubGraph[0..maxrecLevel](= NULL),
    myCoords, msgsReceived[1..maxrecLevel](= 0),
    transmit(= false)

Message alphabet :
    mGraph = {senderCoord, msubGraph, mrecLevel}

Condition : start = true
Action    : start = false
            compute mySubGraph[recLevel] from intra-cell readings
            transmit = true

Condition : received mGraph
Action    : merge(mGraph, mySubGraph[mrecLevel])
            msgsReceived[mrecLevel]++

Condition : transmit = true
Action    : message = {myCoords, mySubGraph[recLevel], recLevel + 1}
            if (recLevel = maxrecLevel)
                exfiltrate message
            else if (Leader(recLevel + 1) = myCoords)
                merge(message, mySubGraph[recLevel + 1])   // self message
                recLevel = recLevel + 1
            else
                send message to Leader(recLevel + 1)
            transmit = false

Condition : msgsReceived[recLevel] = 3 (all external children merged)
Action    : transmit = true
"""
