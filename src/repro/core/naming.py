"""Logical naming service (Sections 2 and 4.2).

*"the end user [thinks] in terms of abstract logical entities such as
events of a specific type"* and, in the design flow, *"if logical naming
service is supported, the group membership can even be determined at run
time"*.

The service binds **names** to membership predicates over virtual-grid
coordinates.  Names come in two flavours:

* **static** — geographic predicates fixed at design time (a rectangle,
  a hierarchy block), resolvable without any data;
* **dynamic** — predicates over runtime state (e.g. ``"feature-nodes"``:
  all PoCs whose reading crossed the query threshold), re-evaluated at
  resolution time, which is exactly the run-time group formation the
  paper describes.

:class:`LogicalNamingService` resolves names to member sets and exposes
cost-accounted group sends through a :class:`PrimitiveEnvironment`, so an
algorithm can address "all feature nodes" as one logical destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .coords import GridCoord
from .network_model import OrientedGrid
from .primitives import CollectiveReport, PrimitiveEnvironment

#: A membership predicate over grid coordinates.
Predicate = Callable[[GridCoord], bool]


class UnknownNameError(KeyError):
    """Raised when resolving a name that was never bound."""


class LogicalNamingService:
    """Name -> membership binding over a virtual grid.

    Parameters
    ----------
    grid:
        The virtual topology whose nodes are being named.
    """

    def __init__(self, grid: OrientedGrid):
        self.grid = grid
        self._bindings: Dict[str, Predicate] = {}

    def bind(self, name: str, predicate: Predicate) -> None:
        """Bind ``name`` to a membership predicate (rebinding replaces)."""
        if not name:
            raise ValueError("name must be non-empty")
        self._bindings[name] = predicate

    def bind_region(self, name: str, x0: int, y0: int, width: int, height: int) -> None:
        """Bind a static geographic region (UW-API-style region naming)."""
        if width <= 0 or height <= 0:
            raise ValueError("region extents must be positive")

        def predicate(coord: GridCoord) -> bool:
            x, y = coord
            return x0 <= x < x0 + width and y0 <= y < y0 + height

        self.bind(name, predicate)

    def unbind(self, name: str) -> None:
        """Remove a binding; raises :class:`UnknownNameError` if absent."""
        if name not in self._bindings:
            raise UnknownNameError(name)
        del self._bindings[name]

    def names(self) -> List[str]:
        """All bound names, sorted."""
        return sorted(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def resolve(self, name: str) -> List[GridCoord]:
        """Evaluate the predicate over the grid *now* (runtime membership).

        Dynamic predicates may resolve differently between calls — that is
        the point of determining membership at run time.
        """
        if name not in self._bindings:
            raise UnknownNameError(name)
        predicate = self._bindings[name]
        return [coord for coord in self.grid.nodes() if predicate(coord)]

    def member_count(self, name: str) -> int:
        """Current cardinality of a named group."""
        return len(self.resolve(name))

    # -- cost-accounted logical communication ---------------------------------

    def send_to_group(
        self,
        env: PrimitiveEnvironment,
        src: GridCoord,
        name: str,
        payload: Any,
        size_units: float = 1.0,
    ) -> CollectiveReport:
        """Unicast ``payload`` from ``src`` to every current member of the
        named group (design-time cost: one shortest-path send per member).
        """
        members = self.resolve(name)
        energy_before = env.ledger.total
        latency = 0.0
        count = 0
        for member in members:
            if member == src:
                continue
            latency = max(latency, env.send(src, member, payload, size_units))
            count += 1
        return CollectiveReport(
            latency=latency,
            energy=env.ledger.total - energy_before,
            messages=count,
        )

    def gather_from_group(
        self,
        env: PrimitiveEnvironment,
        collector: GridCoord,
        name: str,
        value_of: Callable[[GridCoord], Any],
        size_units: float = 1.0,
    ) -> Tuple[List[Any], CollectiveReport]:
        """Every current member sends its value to ``collector``.

        Returns the gathered values (collector's own value included free
        if it is a member) and the cost report.
        """
        members = self.resolve(name)
        energy_before = env.ledger.total
        latency = 0.0
        count = 0
        values: List[Any] = []
        for member in members:
            values.append(value_of(member))
            if member == collector:
                continue
            latency = max(
                latency, env.send(member, collector, value_of(member), size_units)
            )
            env.receive(collector)  # drain the bookkeeping inbox entry
            count += 1
        return values, CollectiveReport(
            latency=latency,
            energy=env.ledger.total - energy_before,
            messages=count,
        )
