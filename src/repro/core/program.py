"""Reactive, event-driven node program model (Section 4.3).

The paper synthesizes algorithms into programs for *"a reactive,
event-driven programming model that is supported by state-of-the-art code
generation frameworks and programming languages for sensor networks"*
(TinyGALS, nesC).  A program is a set of **guarded rules**: each rule has a
*Condition* over the node's state (and the just-delivered message, if any)
and an *Action* that updates state and emits effects (sends, exfiltration).

This module provides the generic machinery; ``repro.core.synthesis``
instantiates it with the concrete Figure 4 program.

Semantics
---------
A :class:`NodeProgram` instance holds one node's state.  Drivers feed it
*stimuli* — :meth:`NodeProgram.start` and :meth:`NodeProgram.deliver` — and
after each stimulus the engine repeatedly evaluates rules until none fires
(run-to-completion), collecting the emitted :class:`Effect` objects for the
driver (an executor or simulator backend) to realize.  An asynchronous data
flow model of computation is assumed: a rule never blocks waiting for
input; information is incrementally processed as it arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .coords import GridCoord


@dataclass
class Message:
    """A message of the program's alphabet.

    The case-study alphabet is ``mGraph = {senderCoord, msubGraph,
    mrecLevel}`` (Figure 4); generic programs may use any payload under any
    ``kind`` tag.
    """

    kind: str
    sender: GridCoord
    payload: Any = None
    level: int = 0
    size_units: float = 1.0


@dataclass
class Effect:
    """An externally visible action requested by a rule.

    ``SEND`` carries (destination coordinate, message); ``EXFILTRATE``
    carries the final payload out of the network; ``LOG`` is a trace
    record.  Compute effort is reported via ``operations`` so the driver
    can charge the cost model.
    """

    kind: str  # "send" | "exfiltrate" | "log"
    destination: Optional[GridCoord] = None
    message: Optional[Message] = None
    payload: Any = None
    operations: float = 0.0


SEND = "send"
EXFILTRATE = "exfiltrate"
LOG = "log"


class Context:
    """What a rule sees when it runs: the node state, the triggering
    message (if the stimulus was a delivery), and an effect buffer."""

    def __init__(self, state: Dict[str, Any], message: Optional[Message] = None):
        self.state = state
        self.message = message
        self.effects: List[Effect] = []

    # -- effect emission helpers used by rule actions -------------------------

    def send(
        self,
        destination: GridCoord,
        message: Message,
        operations: float = 0.0,
    ) -> None:
        """Request transmission of ``message`` to ``destination``."""
        self.effects.append(
            Effect(SEND, destination=destination, message=message, operations=operations)
        )

    def exfiltrate(self, payload: Any, operations: float = 0.0) -> None:
        """Request exfiltration of the final result out of the network."""
        self.effects.append(Effect(EXFILTRATE, payload=payload, operations=operations))

    def log(self, payload: Any) -> None:
        """Emit a trace record."""
        self.effects.append(Effect(LOG, payload=payload))

    def charge(self, operations: float) -> None:
        """Report pure computation effort with no other effect."""
        self.effects.append(Effect(LOG, payload=None, operations=operations))


@dataclass
class Rule:
    """One guarded command: ``Condition : ... Action : ...`` of Figure 4.

    ``condition`` is a predicate over the :class:`Context`; ``action``
    mutates state through the context and may emit effects.  ``once_per_
    message`` rules only run for the stimulus that delivered a message
    (Figure 4's *received mGraph* guard).
    """

    name: str
    condition: Callable[[Context], bool]
    action: Callable[[Context], None]
    consumes_message: bool = False


class NodeProgram:
    """A set of rules plus one node's state, with run-to-completion firing.

    Parameters
    ----------
    rules:
        Evaluated in order; the first enabled rule fires, then evaluation
        restarts (so rule priority is list order, and actions enabling
        other rules cascade within the same stimulus).
    state:
        The initial state dictionary (the Figure 4 ``State`` block).
    max_firings:
        Safety valve against non-terminating rule sets.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        state: Dict[str, Any],
        max_firings: int = 100_000,
    ):
        self.rules = list(rules)
        self.state = state
        self.max_firings = max_firings
        self.firing_log: List[str] = []

    # -- stimuli ---------------------------------------------------------------

    def start(self) -> List[Effect]:
        """Deliver the start-of-round stimulus (sets ``start`` true)."""
        self.state["start"] = True
        return self._run(None)

    def deliver(self, message: Message) -> List[Effect]:
        """Deliver a message and run enabled rules to completion."""
        return self._run(message)

    def settle(self) -> List[Effect]:
        """Re-evaluate rules with no new stimulus (used after external
        state changes in tests)."""
        return self._run(None)

    # -- engine ------------------------------------------------------------------

    def _run(self, message: Optional[Message]) -> List[Effect]:
        ctx = Context(self.state, message)
        message_pending = message is not None
        firings = 0
        while True:
            fired = False
            for rule in self.rules:
                if rule.consumes_message and not message_pending:
                    continue
                ctx.message = message if rule.consumes_message else None
                if rule.condition(ctx):
                    rule.action(ctx)
                    self.firing_log.append(rule.name)
                    if rule.consumes_message:
                        message_pending = False
                    fired = True
                    firings += 1
                    if firings > self.max_firings:
                        raise RuntimeError(
                            f"rule program exceeded {self.max_firings} firings; "
                            f"last rule: {rule.name!r}"
                        )
                    break
            if not fired:
                break
        return ctx.effects

    def snapshot(self) -> Dict[str, Any]:
        """Shallow copy of the state (for assertions in tests)."""
        return dict(self.state)
