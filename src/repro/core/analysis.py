"""First-order analytical performance estimation (Sections 2 and 4.2).

A key promise of the virtual architecture is *"rapid first-order
performance estimation of algorithms"* from the topology and cost model
alone, before any simulation or deployment.  The design-flow example in
Section 2: *"the end user could decide if a divide and conquer approach is
better than a centralized approach if, say, total latency of one round of
the application is to be minimized."*

This module provides closed-form estimates for the two competing designs of
that example on a ``side x side`` oriented grid under the uniform cost
model:

* :func:`estimate_quadtree` — the divide-and-conquer quad-tree reduction
  of the case study (Section 4.1), whose step count is
  ``O(sqrt(N))``: each level *k* moves summaries at most ``2**k`` hops, and
  the sum over levels telescopes to ``2*(side - 1)`` hop-steps.
* :func:`estimate_centralized` — every node forwards its raw reading to a
  sink via shortest-path routing.

Both return an :class:`Estimate` whose numbers are *exact* for the
executor of ``repro.core.executor`` under unit-size messages and free
computation — a property the test suite asserts, closing the paper's loop
between "theoretical performance analysis" and "real performance
measurements".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .coords import GridCoord, ilog2, is_power_of_two
from .cost_model import CostModel, UniformCostModel
from .network_model import OrientedGrid


@dataclass(frozen=True)
class Estimate:
    """A closed-form performance estimate for one round of an algorithm.

    Attributes
    ----------
    latency_steps:
        Critical-path latency in hop-steps (unit messages, free compute) —
        the paper's "step" measure.
    total_energy:
        Network-wide energy (tx + rx at every hop) for unit messages.
    max_node_energy:
        Energy at the most-loaded node.
    messages:
        Logical messages sent (not counting per-hop relays).
    hop_units:
        Sum over messages of ``size * hops``.
    """

    latency_steps: float
    total_energy: float
    max_node_energy: float
    messages: int
    hop_units: float


def estimate_quadtree(
    side: int,
    cost_model: Optional[CostModel] = None,
    units_at_level: Optional[Callable[[int], float]] = None,
) -> Estimate:
    """Closed-form estimate for the quad-tree reduction on a square grid.

    Parameters
    ----------
    side:
        Grid side (power of two); ``N = side**2``.
    cost_model:
        Defaults to the uniform model.
    units_at_level:
        Message size (data units) of a level-*k* summary, ``k >= 1``;
        defaults to 1 (the paper's step analysis).  Pass the boundary-size
        profile to study data-dependent behaviour.

    Derivation (NW-leader mapping, Figure 3): at level *k* the grid holds
    ``4**(m-k)`` groups (``m = log2(side)``).  In each group the three
    external child leaders sit at hop distances ``h, h, 2h`` from the
    parent leader with ``h = 2**(k-1)``, so a group contributes ``4h``
    hop-units of traffic and its slowest message takes ``2h`` hop-steps.
    Levels execute in sequence along the critical path, so

    * ``latency = sum_k 2**k * s_k``  (``= 2*(side-1)`` for unit sizes),
    * ``hop_units = sum_k 4**(m-k) * 2**(k+1) * s_k``,
    * ``total_energy = 2 * hop_units`` (tx + rx per hop).
    """
    if not is_power_of_two(side):
        raise ValueError(f"side must be a power of two, got {side}")
    cm = cost_model or UniformCostModel()
    sizes = units_at_level or (lambda level: 1.0)
    m = ilog2(side)

    latency = 0.0
    hop_units = 0.0
    messages = 0
    for k in range(1, m + 1):
        s = sizes(k)
        h = 2 ** (k - 1)
        groups = 4 ** (m - k)
        latency += cm.tx_latency(s) * 2 * h
        hop_units += groups * 4 * h * s
        messages += groups * 3

    total_energy = cm.tx_energy(1.0) * hop_units + cm.rx_energy(1.0) * hop_units

    # Hot spot.  Two candidates under XY (x-first) routing:
    #
    # * the root (0,0): leads every level, receives the 3 external child
    #   summaries of each — load 3 * sum_k rx(s_k);
    # * the relay (0,1): transmits its own level-1 summary, relays its
    #   block's diagonal level-1 message, and relays the southern and
    #   diagonal child messages of every level k >= 2 (both route north
    #   along column x=0 through it) — load
    #   tx(s_1) + hop(s_1) + sum_{k>=2} 2*hop(s_k)
    #   (= 4*m - 1 for unit sizes, which beats the root's 3*m for m >= 1).
    root_load = sum(cm.rx_energy(sizes(k)) * 3 for k in range(1, m + 1))
    relay_load = 0.0
    if m >= 1:
        relay_load = cm.tx_energy(sizes(1)) + cm.hop_energy(sizes(1))
        relay_load += sum(2 * cm.hop_energy(sizes(k)) for k in range(2, m + 1))
    max_node = max(root_load, relay_load)
    return Estimate(
        latency_steps=latency,
        total_energy=total_energy,
        max_node_energy=max_node,
        messages=messages,
        hop_units=hop_units,
    )


def estimate_centralized(
    side: int,
    cost_model: Optional[CostModel] = None,
    sink: GridCoord = (0, 0),
    units_per_node: float = 1.0,
    serial_sink: bool = True,
) -> Estimate:
    """Closed-form estimate for the centralized-collection baseline.

    Every node of a ``side x side`` grid sends ``units_per_node`` of raw
    data to ``sink`` along XY shortest-path routes.

    * ``hop_units = s * sum_over_nodes manhattan(node, sink)``; for the
      corner sink this is ``s * side**2 * (side - 1)`` — ``O(N**1.5)``.
    * ``total_energy = 2 * hop_units``.
    * Latency: the sink's radio serializes its receptions, so with
      ``serial_sink`` (the physically honest setting) the round takes at
      least ``(N - 1) * rx_time`` plus the longest route; without it the
      estimate is the idealized congestion-free maximum distance.
    * Hot spot: under x-first XY routing every message from a row
      ``y >= 1`` funnels through the corner sink's southern neighbour
      ``(0, 1)``, which relays ``side*(side-1) - 1`` messages (tx + rx
      each) plus its own transmission — the funnel that motivates
      in-network processing.
    """
    cm = cost_model or UniformCostModel()
    grid = OrientedGrid(side)
    grid.validate_member(sink)
    s = units_per_node

    total_hops = sum(
        grid.hop_distance(node, sink) for node in grid.nodes()
    )
    hop_units = s * total_hops
    total_energy = cm.tx_energy(1.0) * hop_units + cm.rx_energy(1.0) * hop_units
    n_senders = grid.num_nodes - 1
    max_distance = max(grid.hop_distance(node, sink) for node in grid.nodes())
    if serial_sink:
        latency = cm.tx_latency(s) * max(
            n_senders,  # sink receives one message per time slot
            max_distance,
        )
    else:
        latency = cm.tx_latency(s) * max_distance
    sink_energy = cm.rx_energy(s) * n_senders
    if sink == (0, 0) and side > 1:
        relayed = side * (side - 1) - 1  # messages funnelling through (0, 1)
        relay_energy = relayed * cm.hop_energy(s) + cm.tx_energy(s)
    else:
        relay_energy = 0.0  # closed form derived for the corner sink only
    max_node = max(sink_energy, relay_energy)
    return Estimate(
        latency_steps=latency,
        total_energy=total_energy,
        max_node_energy=max_node,
        messages=n_senders,
        hop_units=hop_units,
    )


def quadtree_step_count(side: int) -> int:
    """The paper's headline: total hop-steps of the quad-tree reduction.

    ``sum_{k=1}^{m} 2**k = 2*(side - 1)`` — ``O(sqrt(N))`` for
    ``N = side**2`` grid nodes (Section 4.1's ``O(sqrt(n))`` claim).
    """
    if not is_power_of_two(side):
        raise ValueError(f"side must be a power of two, got {side}")
    return 2 * (side - 1)


def crossover_side(
    cost_model: Optional[CostModel] = None,
    max_exponent: int = 12,
) -> Optional[int]:
    """Smallest power-of-two side where the quad-tree beats the
    centralized design on *latency* (it always wins on energy for
    ``side >= 2``).  Returns None if no crossover below ``2**max_exponent``.

    This regenerates the "where does the crossover fall" row of the
    Section 2 design-flow comparison.
    """
    for e in range(1, max_exponent + 1):
        side = 2**e
        q = estimate_quadtree(side, cost_model)
        c = estimate_centralized(side, cost_model)
        if q.latency_steps < c.latency_steps:
            return side
    return None


def group_communication_cost_table(
    side: int, cost_model: Optional[CostModel] = None
) -> Dict[int, Dict[str, float]]:
    """Per-level member-to-leader cost profile (Section 4.2's middleware
    contract: cost proportional to hop distance).

    Returns ``level -> {"max_hops", "mean_hops", "total_hops"}`` over all
    followers of all groups at that level, under the NW-leader policy.
    """
    if not is_power_of_two(side):
        raise ValueError(f"side must be a power of two, got {side}")
    from .groups import HierarchicalGroups  # deferred to avoid import cycle

    grid = OrientedGrid(side)
    groups = HierarchicalGroups(grid)
    table: Dict[int, Dict[str, float]] = {}
    for level in range(1, groups.max_level + 1):
        hops = []
        for leader in groups.leaders_at(level):
            for member in groups.members(leader, level):
                if member != leader:
                    hops.append(grid.hop_distance(member, leader))
        table[level] = {
            "max_hops": float(max(hops)),
            "mean_hops": sum(hops) / len(hops),
            "total_hops": float(sum(hops)),
        }
    return table
