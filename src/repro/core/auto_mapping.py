"""Automatic task mapping by simulated annealing (Section 4.2).

*"The virtual topology, cost model, and application graph can be provided
as input to any of the numerous task mapping algorithms that exist in
literature [Bokhari].  Since energy is an important consideration ... the
optimization criteria for the chosen algorithm will have to reflect new
performance metrics such as total energy and/or energy balance.  Also, for
the mapping to be feasible, constraints such as coverage and spatial
correlation will have to be satisfied."*

This module supplies such a tool: a constraint-respecting simulated
annealer over interior-task placements.  Leaf placements are pinned by the
coverage constraint; interior tasks move freely over the grid; candidate
moves are scored by a pluggable objective (total energy, latency, energy
balance, or a weighted blend).  The paper's hand-derived recursive-quadrant
mapping serves as the reference: the annealer should approach (and for the
energy objective, match) its quality — which the tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .coords import morton_decode
from .cost_model import CostModel, UniformCostModel, energy_balance
from .mapping import Mapping, check_all_constraints
from .network_model import OrientedGrid
from .taskgraph import TaskGraph, TaskId

#: Objective over a candidate mapping; smaller is better.
Objective = Callable[[Mapping], float]


def total_energy_objective(cost_model: Optional[CostModel] = None) -> Objective:
    """Minimize total communication energy of one round."""
    cm = cost_model or UniformCostModel()

    def objective(mapping: Mapping) -> float:
        energy, _ = mapping.communication_cost(cm)
        return energy

    return objective


def latency_objective(cost_model: Optional[CostModel] = None) -> Objective:
    """Minimize critical-path latency of one round."""
    cm = cost_model or UniformCostModel()

    def objective(mapping: Mapping) -> float:
        _, latency = mapping.communication_cost(cm)
        return latency

    return objective


def balanced_energy_objective(
    cost_model: Optional[CostModel] = None, balance_weight: float = 0.5
) -> Objective:
    """Blend total energy with energy balance (Section 4.2's "total energy
    and/or energy balance").

    Score = ``energy * (1 + w * (1 - balance))``: perfectly balanced
    mappings pay no penalty; hot-spotted ones pay up to ``w`` extra.
    """
    cm = cost_model or UniformCostModel()
    if balance_weight < 0:
        raise ValueError("balance_weight must be non-negative")

    def objective(mapping: Mapping) -> float:
        energy, _ = mapping.communication_cost(cm)
        ledger = mapping.per_node_energy(cm)
        balance = energy_balance(ledger, mapping.grid.nodes())
        return energy * (1.0 + balance_weight * (1.0 - balance))

    return objective


@dataclass
class AnnealingResult:
    """Outcome of one annealing run."""

    mapping: Mapping
    score: float
    initial_score: float
    accepted_moves: int
    evaluated_moves: int

    @property
    def improvement(self) -> float:
        """Relative score reduction vs the starting placement."""
        if self.initial_score == 0:
            return 0.0
        return 1.0 - self.score / self.initial_score


def anneal_mapping(
    graph: TaskGraph,
    grid: OrientedGrid,
    objective: Optional[Objective] = None,
    initial: Optional[Mapping] = None,
    iterations: int = 2000,
    initial_temperature: float = 10.0,
    cooling: float = 0.995,
    rng: "np.random.Generator | int | None" = None,
    enforce_constraints: bool = True,
) -> AnnealingResult:
    """Search interior-task placements by simulated annealing.

    Parameters
    ----------
    graph, grid:
        The application graph and virtual topology.
    objective:
        Score to minimize; defaults to total energy.
    initial:
        Starting mapping; defaults to leaves-on-their-cells with every
        interior task at the grid origin.
    iterations, initial_temperature, cooling:
        Annealing schedule (geometric cooling).
    enforce_constraints:
        Validate coverage + spatial correlation on the final mapping
        (spatial correlation is invariant under interior moves, so this
        can only fail if the *initial* mapping was infeasible).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    score_of = objective or total_energy_objective()
    r = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    if initial is None:
        initial = Mapping(graph=graph, grid=grid)
        for task in graph.tasks():
            if graph.predecessors(task.tid):
                initial.place(task.tid, (0, 0))
            else:
                initial.place(task.tid, morton_decode(task.tid.index))
    current = Mapping(graph=graph, grid=grid, placement=dict(initial.placement))

    movable: List[TaskId] = [
        t.tid for t in graph.tasks() if graph.predecessors(t.tid)
    ]
    if not movable:
        score = score_of(current)
        return AnnealingResult(current, score, score, 0, 0)

    nodes = list(grid.nodes())
    current_score = score_of(current)
    initial_score = current_score
    best = Mapping(graph=graph, grid=grid, placement=dict(current.placement))
    best_score = current_score
    temperature = initial_temperature
    accepted = 0
    evaluated = 0

    for _ in range(iterations):
        tid = movable[int(r.integers(len(movable)))]
        old = current.placement[tid]
        candidate = nodes[int(r.integers(len(nodes)))]
        if candidate == old:
            continue
        current.placement[tid] = candidate
        new_score = score_of(current)
        evaluated += 1
        delta = new_score - current_score
        if delta <= 0 or r.random() < math.exp(-delta / max(temperature, 1e-9)):
            current_score = new_score
            accepted += 1
            if new_score < best_score:
                best_score = new_score
                best = Mapping(
                    graph=graph, grid=grid, placement=dict(current.placement)
                )
        else:
            current.placement[tid] = old
        temperature *= cooling

    if enforce_constraints:
        check_all_constraints(best)
    return AnnealingResult(
        mapping=best,
        score=best_score,
        initial_score=initial_score,
        accepted_moves=accepted,
        evaluated_moves=evaluated,
    )
