"""Cost functions and performance metrics of the virtual architecture.

Section 3.2 of the paper defines a **uniform cost function**: the energy
cost for transmission, reception, or computation of one unit of data is one
unit of energy, and one unit of latency is the time taken to complete *k*
computations or transmit *l* units of data (with *k* and *l* the node's
processing speed and transmission bandwidth).  This model — standard in the
algorithm-design literature the paper cites [5, 14, 18] — is implemented by
:class:`UniformCostModel`; deployments with different radio characteristics
can substitute any other :class:`CostModel`.

Section 2 lists the performance metrics an algorithm designer may derive
from the cost functions: *"total energy, energy balance, total latency of a
set of operations, system lifetime, etc."* — all provided here over an
:class:`EnergyLedger` that records per-node consumption.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple


class CostModel(abc.ABC):
    """Energy and latency cost functions for the virtual architecture's
    primitives.

    All quantities are in abstract *units*: data sizes in units of data,
    computation in operation counts, results in units of energy / latency.
    """

    @abc.abstractmethod
    def tx_energy(self, units: float) -> float:
        """Energy to transmit ``units`` of data one hop."""

    @abc.abstractmethod
    def rx_energy(self, units: float) -> float:
        """Energy to receive ``units`` of data."""

    @abc.abstractmethod
    def compute_energy(self, operations: float) -> float:
        """Energy to execute ``operations`` computational operations."""

    @abc.abstractmethod
    def tx_latency(self, units: float) -> float:
        """Time to transmit ``units`` of data one hop."""

    @abc.abstractmethod
    def compute_latency(self, operations: float) -> float:
        """Time to execute ``operations`` computational operations."""

    # -- derived costs ------------------------------------------------------

    def hop_energy(self, units: float) -> float:
        """Total energy of moving ``units`` across one hop (tx + rx)."""
        return self.tx_energy(units) + self.rx_energy(units)

    def path_energy(self, units: float, hops: int) -> float:
        """Total energy of relaying ``units`` over ``hops`` hops."""
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        return self.hop_energy(units) * hops

    def path_latency(self, units: float, hops: int) -> float:
        """Store-and-forward latency of relaying ``units`` over ``hops`` hops."""
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        return self.tx_latency(units) * hops


class UniformCostModel(CostModel):
    """The paper's uniform cost function (Section 3.2).

    ``energy_per_unit`` defaults to 1: transmitting, receiving, or computing
    on one unit of data each costs one unit of energy.  ``processing_speed``
    (*k*) and ``bandwidth`` (*l*) set how many operations / data units fit
    in one unit of latency.
    """

    def __init__(
        self,
        energy_per_unit: float = 1.0,
        processing_speed: float = 1.0,
        bandwidth: float = 1.0,
    ):
        if energy_per_unit <= 0:
            raise ValueError("energy_per_unit must be positive")
        if processing_speed <= 0 or bandwidth <= 0:
            raise ValueError("processing_speed and bandwidth must be positive")
        self.energy_per_unit = energy_per_unit
        self.processing_speed = processing_speed
        self.bandwidth = bandwidth

    def __repr__(self) -> str:
        return (
            f"UniformCostModel(energy_per_unit={self.energy_per_unit}, "
            f"processing_speed={self.processing_speed}, bandwidth={self.bandwidth})"
        )

    def tx_energy(self, units: float) -> float:
        return self.energy_per_unit * units

    def rx_energy(self, units: float) -> float:
        return self.energy_per_unit * units

    def compute_energy(self, operations: float) -> float:
        return self.energy_per_unit * operations

    def tx_latency(self, units: float) -> float:
        return units / self.bandwidth

    def compute_latency(self, operations: float) -> float:
        return operations / self.processing_speed


class FirstOrderRadioCostModel(CostModel):
    """First-order radio model cost functions (Heinzelman-style).

    The paper notes (citing Min & Chandrakasan [13]) that for short-range
    omnidirectional antennas reception and transmission energy are of
    similar magnitude and dominated by the radio electronics; this model
    makes the electronics/amplifier split explicit for users whose
    deployment characteristics "necessitate a different set of cost
    functions" (Section 3.2).

    Energy per data unit: ``e_elec + e_amp * range**exponent`` to transmit,
    ``e_elec`` to receive.
    """

    def __init__(
        self,
        e_elec: float = 50e-9,
        e_amp: float = 100e-12,
        tx_range: float = 10.0,
        path_loss_exponent: float = 2.0,
        e_compute: float = 5e-9,
        processing_speed: float = 1.0,
        bandwidth: float = 1.0,
    ):
        if min(e_elec, e_amp, tx_range, e_compute) < 0:
            raise ValueError("radio parameters must be non-negative")
        self.e_elec = e_elec
        self.e_amp = e_amp
        self.tx_range = tx_range
        self.path_loss_exponent = path_loss_exponent
        self.e_compute = e_compute
        self.processing_speed = processing_speed
        self.bandwidth = bandwidth

    def tx_energy(self, units: float) -> float:
        return units * (
            self.e_elec + self.e_amp * self.tx_range**self.path_loss_exponent
        )

    def rx_energy(self, units: float) -> float:
        return units * self.e_elec

    def compute_energy(self, operations: float) -> float:
        return operations * self.e_compute

    def tx_latency(self, units: float) -> float:
        return units / self.bandwidth

    def compute_latency(self, operations: float) -> float:
        return operations / self.processing_speed


class EnergyLedger:
    """Per-node record of energy consumption.

    Every executor and protocol in this library charges its energy here,
    keyed by an arbitrary hashable node identity (grid coordinate for
    virtual nodes, integer id for physical nodes).  The ledger is the input
    to all system-level metrics (:func:`total_energy`,
    :func:`energy_balance`, :func:`system_lifetime`).
    """

    def __init__(self) -> None:
        self._consumed: Dict[Hashable, float] = {}
        self._by_category: Dict[str, float] = {}

    def charge(self, node: Hashable, amount: float, category: str = "other") -> None:
        """Record ``amount`` units of energy consumed by ``node``.

        ``category`` tags the expense (``"tx"``, ``"rx"``, ``"compute"``,
        ...) for breakdown reporting.  Negative charges are rejected.
        """
        if amount < 0:
            raise ValueError(f"cannot charge negative energy ({amount})")
        self._consumed[node] = self._consumed.get(node, 0.0) + amount
        self._by_category[category] = self._by_category.get(category, 0.0) + amount

    def consumed(self, node: Hashable) -> float:
        """Total energy consumed by ``node`` (0 if never charged)."""
        return self._consumed.get(node, 0.0)

    def per_node(self) -> Dict[Hashable, float]:
        """Copy of the node -> consumed-energy map."""
        return dict(self._consumed)

    def by_category(self) -> Dict[str, float]:
        """Copy of the category -> consumed-energy map."""
        return dict(self._by_category)

    @property
    def total(self) -> float:
        """Sum of all recorded consumption."""
        return sum(self._consumed.values())

    def fingerprint(self) -> Tuple:
        """Canonical, order-stable serialization of the ledger.

        Node keys are stringified before sorting so heterogeneous keys
        (int ids, grid-coordinate tuples) stay comparable; category totals
        ride along.  Determinism tests and ``repro.bench`` compare these
        instead of hand-rolled sorted-dict copies.
        """
        return (
            tuple(sorted((str(node), amount) for node, amount in self._consumed.items())),
            tuple(sorted(self._by_category.items())),
        )

    def merge(self, other: "EnergyLedger") -> None:
        """Fold another ledger's records into this one."""
        for node, amount in other._consumed.items():
            self._consumed[node] = self._consumed.get(node, 0.0) + amount
        for cat, amount in other._by_category.items():
            self._by_category[cat] = self._by_category.get(cat, 0.0) + amount

    def __len__(self) -> int:
        return len(self._consumed)

    def __repr__(self) -> str:
        return f"EnergyLedger(nodes={len(self)}, total={self.total:.3f})"


# ---------------------------------------------------------------------------
# System-level performance metrics (Section 2's metric menu)
# ---------------------------------------------------------------------------


def total_energy(ledger: EnergyLedger) -> float:
    """Total energy consumed across the network.

    The paper's dominant system-level concern: *"minimizing energy
    consumption of the network as a whole is the dominant concern"*.
    """
    return ledger.total


def max_node_energy(ledger: EnergyLedger) -> float:
    """Energy consumed by the single most-loaded node (hot spot)."""
    per = ledger.per_node()
    return max(per.values()) if per else 0.0


def energy_balance(
    ledger: EnergyLedger, population: Optional[Iterable[Hashable]] = None
) -> float:
    """Energy-balance index in ``[0, 1]``; 1 means perfectly even drain.

    Defined as ``mean / max`` of per-node consumption over ``population``
    (all charged nodes by default; pass the full node set to count
    never-charged nodes as zero-consumption).  An algorithm with good
    energy balance avoids early death of hot-spot nodes, which the paper
    lists as a first-class optimization criterion for mapping (Section 4.2).
    """
    per = ledger.per_node()
    if population is not None:
        values = [per.get(n, 0.0) for n in population]
    else:
        values = list(per.values())
    if not values:
        return 1.0
    peak = max(values)
    if peak == 0.0:
        return 1.0
    # clamp: float summation can push the mean one ulp above the max
    return min(1.0, (sum(values) / len(values)) / peak)


def energy_stddev(
    ledger: EnergyLedger, population: Optional[Iterable[Hashable]] = None
) -> float:
    """Population standard deviation of per-node energy consumption."""
    per = ledger.per_node()
    if population is not None:
        values = [per.get(n, 0.0) for n in population]
    else:
        values = list(per.values())
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


def system_lifetime(
    ledger: EnergyLedger,
    initial_energy: float,
    population: Optional[Iterable[Hashable]] = None,
) -> float:
    """Number of rounds until the first node dies.

    Assumes the recorded consumption is one round of the application (the
    paper: *"the application essentially executes in an infinite loop"*)
    and every node starts with ``initial_energy``; the system lifetime is
    then ``initial_energy / max-per-round-drain`` rounds.  Returns
    ``math.inf`` if nothing was consumed.
    """
    if initial_energy <= 0:
        raise ValueError("initial_energy must be positive")
    per = ledger.per_node()
    if population is not None:
        values = [per.get(n, 0.0) for n in population]
    else:
        values = list(per.values())
    peak = max(values) if values else 0.0
    if peak == 0.0:
        return math.inf
    return initial_energy / peak


@dataclass
class PerformanceReport:
    """Bundle of the standard metrics for one run / estimate.

    Produced by executors and the analytical estimator so benchmarks and
    examples report a consistent row shape.
    """

    latency: float
    total_energy: float
    max_node_energy: float
    energy_balance: float
    messages: int = 0
    data_units: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_ledger(
        cls,
        ledger: EnergyLedger,
        latency: float,
        messages: int = 0,
        data_units: float = 0.0,
        population: Optional[Iterable[Hashable]] = None,
        **extra: float,
    ) -> "PerformanceReport":
        """Build a report by computing the ledger-derived metrics."""
        population = list(population) if population is not None else None
        return cls(
            latency=latency,
            total_energy=total_energy(ledger),
            max_node_energy=max_node_energy(ledger),
            energy_balance=energy_balance(ledger, population),
            messages=messages,
            data_units=data_units,
            extra=dict(extra),
        )

    def row(self) -> Tuple[float, float, float, float, int]:
        """The (latency, total energy, max node energy, balance, messages)
        tuple used as a benchmark table row."""
        return (
            self.latency,
            self.total_energy,
            self.max_node_energy,
            self.energy_balance,
            self.messages,
        )
