"""Execution of synthesized programs on the virtual architecture.

The paper's design flow evaluates an algorithm *on the virtual
architecture* before any deployment exists: the virtual topology plus the
cost functions are enough to run the synthesized program and measure
latency, energy, and message counts (Section 2's "rapid first-order
performance estimation", made exact by actually executing the rules).

:class:`VirtualGridExecutor` is a lightweight event-driven driver: every
grid node owns a :class:`~repro.core.program.NodeProgram`; SEND effects are
realized as messages relayed along shortest (XY) grid routes with
store-and-forward latency and per-hop tx/rx energy taken from the cost
model, exactly as Section 4.2 prescribes for member-to-leader traffic.

The heavier physical-network path (virtual processes bound to elected
physical nodes, messages multi-hopped through the emulated grid) lives in
``repro.runtime.stack``; both drivers execute the *same* synthesized
program objects — the core promise of the virtual-architecture abstraction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .coords import GridCoord
from .cost_model import CostModel, EnergyLedger, PerformanceReport, UniformCostModel
from .program import EXFILTRATE, LOG, SEND, Effect, Message, NodeProgram
from .synthesis import SynthesizedProgram


@dataclass
class ExecutionResult:
    """Outcome of one round executed on the virtual grid.

    Attributes
    ----------
    exfiltrated:
        ``coord -> payload`` for every node that exfiltrated a result
        (one entry — the root — for a full reduction; one per storage
        leader for partial reductions).
    ledger:
        Per-virtual-node energy consumption.
    latency:
        Completion time of the last exfiltration (or of the last event if
        nothing exfiltrated).
    messages:
        Number of logical messages sent (hop count is reflected in energy
        and latency, not here).
    data_units:
        Sum of message sizes.
    hop_units:
        Sum over messages of ``size * hops`` — the paper's
        communication-cost measure.
    events:
        Number of stimuli processed.
    """

    exfiltrated: Dict[GridCoord, Any]
    ledger: EnergyLedger
    latency: float
    messages: int
    data_units: float
    hop_units: float
    events: int

    def report(self) -> PerformanceReport:
        """Standard metric bundle for benchmark rows."""
        return PerformanceReport.from_ledger(
            self.ledger,
            latency=self.latency,
            messages=self.messages,
            data_units=self.data_units,
        )

    @property
    def root_payload(self) -> Any:
        """The single exfiltrated payload (raises unless exactly one)."""
        if len(self.exfiltrated) != 1:
            raise ValueError(
                f"expected exactly one exfiltration, got {len(self.exfiltrated)}"
            )
        return next(iter(self.exfiltrated.values()))


class VirtualGridExecutor:
    """Event-driven executor of a :class:`SynthesizedProgram` on its grid.

    Parameters
    ----------
    spec:
        The synthesized program (grid, middleware, aggregation).
    cost_model:
        Cost functions; defaults to the paper's uniform model.
    charge_compute:
        If False, computation is free (pure communication analysis —
        the configuration matching the paper's "step" counting).
    """

    def __init__(
        self,
        spec: SynthesizedProgram,
        cost_model: Optional[CostModel] = None,
        charge_compute: bool = True,
    ):
        self.spec = spec
        self.cost_model = cost_model or UniformCostModel()
        self.charge_compute = charge_compute
        self.grid = spec.groups.grid

    def run(self) -> ExecutionResult:
        """Execute one full round: start every node at t=0, drain events."""
        cm = self.cost_model
        grid = self.grid
        ledger = EnergyLedger()
        programs: Dict[GridCoord, NodeProgram] = {}
        node_ready: Dict[GridCoord, float] = {}
        exfiltrated: Dict[GridCoord, Any] = {}
        final_time = 0.0
        messages = 0
        data_units = 0.0
        hop_units = 0.0
        events = 0

        # (time, seq, coord, message-or-None); seq breaks ties deterministically.
        queue: List[Tuple[float, int, GridCoord, Optional[Message]]] = []
        seq = 0
        for coord in grid.nodes():
            programs[coord] = self.spec.program_for(coord)
            node_ready[coord] = 0.0
            heapq.heappush(queue, (0.0, seq, coord, None))
            seq += 1

        while queue:
            time, _, coord, msg = heapq.heappop(queue)
            events += 1
            begin = max(time, node_ready[coord])
            program = programs[coord]
            effects = program.start() if msg is None else program.deliver(msg)

            ops = sum(e.operations for e in effects)
            if self.charge_compute and ops:
                ledger.charge(coord, cm.compute_energy(ops), "compute")
            finish = begin + (cm.compute_latency(ops) if self.charge_compute else 0.0)
            node_ready[coord] = finish
            final_time = max(final_time, finish)

            for effect in effects:
                if effect.kind == SEND:
                    assert effect.destination is not None and effect.message is not None
                    dest = effect.destination
                    size = effect.message.size_units
                    path = grid.route(coord, dest)
                    hops = len(path) - 1
                    for a, b in zip(path, path[1:]):
                        ledger.charge(a, cm.tx_energy(size), "tx")
                        ledger.charge(b, cm.rx_energy(size), "rx")
                    arrival = finish + cm.path_latency(size, hops)
                    heapq.heappush(queue, (arrival, seq, dest, effect.message))
                    seq += 1
                    messages += 1
                    data_units += size
                    hop_units += size * hops
                elif effect.kind == EXFILTRATE:
                    exfiltrated[coord] = effect.payload
                    final_time = max(final_time, finish)

        latency = (
            max(
                (node_ready[c] for c in exfiltrated),
                default=final_time,
            )
            if exfiltrated
            else final_time
        )
        return ExecutionResult(
            exfiltrated=exfiltrated,
            ledger=ledger,
            latency=latency,
            messages=messages,
            data_units=data_units,
            hop_units=hop_units,
            events=events,
        )


def execute_round(
    spec: SynthesizedProgram,
    cost_model: Optional[CostModel] = None,
    charge_compute: bool = True,
) -> ExecutionResult:
    """Convenience wrapper: build an executor and run one round."""
    return VirtualGridExecutor(
        spec, cost_model=cost_model, charge_compute=charge_compute
    ).run()
