"""Virtual network models: the design-time topology of the virtual architecture.

Section 2 of the paper: *"The network model specifies the topology of the
deployment that can be assumed at design time. This (virtual) topology can
be emulated on the real network deployment in a variety of ways that could
be hidden from the algorithm designer."*

The case study (Section 3.2) abstracts the underlying network as an
**oriented two-dimensional grid**; for non-uniform deployments the paper
suggests a **tree** instead.  Both are provided here behind the common
:class:`VirtualTopology` interface so that algorithms, cost analysis, and
the synthesis pass are written once against the abstraction.
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional

from .coords import (
    ALL_DIRECTIONS,
    Direction,
    GridCoord,
    ilog2,
    is_power_of_two,
    manhattan,
    morton_decode,
    morton_encode,
    xy_route,
)


class VirtualTopology(abc.ABC):
    """Abstract machine topology exported to the algorithm designer.

    A topology is a finite graph whose vertices are addressable *virtual
    nodes*.  Concrete subclasses fix the vertex set, the adjacency, and a
    shortest-path hop metric, which the cost model (``repro.core.cost_model``)
    turns into latency and energy estimates.
    """

    @abc.abstractmethod
    def nodes(self) -> Iterator[GridCoord]:
        """Iterate every virtual node address."""

    @abc.abstractmethod
    def __contains__(self, coord: GridCoord) -> bool:
        """True iff ``coord`` addresses a node of this topology."""

    @abc.abstractmethod
    def neighbors(self, coord: GridCoord) -> List[GridCoord]:
        """Adjacent virtual nodes of ``coord``."""

    @abc.abstractmethod
    def hop_distance(self, a: GridCoord, b: GridCoord) -> int:
        """Minimum number of hops between ``a`` and ``b``."""

    @abc.abstractmethod
    def route(self, a: GridCoord, b: GridCoord) -> List[GridCoord]:
        """A deterministic shortest path from ``a`` to ``b``, inclusive."""

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Total number of virtual nodes."""

    def validate_member(self, coord: GridCoord) -> None:
        """Raise :class:`ValueError` if ``coord`` is not a node."""
        if coord not in self:
            raise ValueError(f"{coord!r} is not a node of {self!r}")


class OrientedGrid(VirtualTopology):
    """The oriented two-dimensional grid of the case study (Section 3.2).

    Nodes are the coordinates ``(x, y)`` with ``0 <= x < width`` and
    ``0 <= y < height``; ``(0, 0)`` is the north-west corner.  Each node
    corresponds to one *point of coverage* (PoC) of the terrain.  Edges
    connect 4-neighbours, and the default routing is dimension-ordered
    (XY) shortest-path routing.

    Parameters
    ----------
    width, height:
        Grid extents.  ``height`` defaults to ``width`` (square grid).
    """

    def __init__(self, width: int, height: Optional[int] = None):
        if height is None:
            height = width
        if width <= 0 or height <= 0:
            raise ValueError(f"grid extents must be positive, got {width}x{height}")
        self.width = width
        self.height = height

    # -- identity ---------------------------------------------------------

    def __repr__(self) -> str:
        return f"OrientedGrid({self.width}x{self.height})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, OrientedGrid)
            and other.width == self.width
            and other.height == self.height
        )

    def __hash__(self) -> int:
        return hash(("OrientedGrid", self.width, self.height))

    # -- VirtualTopology interface ----------------------------------------

    @property
    def num_nodes(self) -> int:
        """``width * height`` — the paper's *N*."""
        return self.width * self.height

    def nodes(self) -> Iterator[GridCoord]:
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def __contains__(self, coord: GridCoord) -> bool:
        if not isinstance(coord, tuple) or len(coord) != 2:
            return False
        x, y = coord
        return 0 <= x < self.width and 0 <= y < self.height

    def neighbors(self, coord: GridCoord) -> List[GridCoord]:
        self.validate_member(coord)
        x, y = coord
        out = []
        for d in ALL_DIRECTIONS:
            n = (x + d.dx, y + d.dy)
            if n in self:
                out.append(n)
        return out

    def neighbor_in(self, coord: GridCoord, direction: Direction) -> Optional[GridCoord]:
        """The neighbour of ``coord`` in ``direction``, or None at the edge."""
        self.validate_member(coord)
        n = direction.step(coord)
        return n if n in self else None

    def hop_distance(self, a: GridCoord, b: GridCoord) -> int:
        self.validate_member(a)
        self.validate_member(b)
        return manhattan(a, b)

    def route(self, a: GridCoord, b: GridCoord) -> List[GridCoord]:
        self.validate_member(a)
        self.validate_member(b)
        return xy_route(a, b)

    # -- grid-specific helpers ---------------------------------------------

    @property
    def is_square(self) -> bool:
        """True iff ``width == height``."""
        return self.width == self.height

    @property
    def is_quadtree_compatible(self) -> bool:
        """True iff the grid is square with power-of-two side.

        This is the Section 4 assumption: a ``sqrt(N) x sqrt(N)`` grid with
        ``log2(sqrt(N))`` integral, so that recursive quadrant division is
        exact at every level.
        """
        return self.is_square and is_power_of_two(self.width)

    @property
    def max_level(self) -> int:
        """Depth of the quadrant hierarchy: ``log2(side)``.

        Only defined for quadtree-compatible grids.
        """
        if not self.is_quadtree_compatible:
            raise ValueError(
                f"{self!r} is not square with power-of-two side; "
                "the quadrant hierarchy is undefined"
            )
        return ilog2(self.width)

    def index_of(self, coord: GridCoord) -> int:
        """Morton (Z-order) index of a node — the Figure 2/3 numbering."""
        self.validate_member(coord)
        return morton_encode(coord)

    def coord_of(self, index: int) -> GridCoord:
        """Inverse of :func:`index_of`."""
        coord = morton_decode(index)
        self.validate_member(coord)
        return coord

    def row_major_index(self, coord: GridCoord) -> int:
        """Plain row-major index (used for dense array storage)."""
        self.validate_member(coord)
        return coord[1] * self.width + coord[0]

    def boundary_nodes(self) -> Iterator[GridCoord]:
        """Nodes on the outer perimeter of the grid."""
        for x in range(self.width):
            yield (x, 0)
            if self.height > 1:
                yield (x, self.height - 1)
        for y in range(1, self.height - 1):
            yield (0, y)
            if self.width > 1:
                yield (self.width - 1, y)

    def diameter(self) -> int:
        """Maximum hop distance between any two nodes."""
        return (self.width - 1) + (self.height - 1)


class VirtualTree(VirtualTopology):
    """A rooted complete *k*-ary tree topology.

    Section 3.2: *"For non-uniform deployments, other virtual topologies
    such as a tree could be more appropriate."*  Node addresses reuse the
    ``(x, y)`` pair shape as ``(level, index)``: the root is ``(0, 0)`` and
    the children of ``(l, i)`` are ``(l+1, k*i) .. (l+1, k*i + k-1)``.

    Parameters
    ----------
    arity:
        Branching factor ``k`` (>= 2).
    depth:
        Number of edge levels; a tree of depth ``d`` has ``d+1`` node
        levels and ``k**d`` leaves.
    """

    def __init__(self, arity: int, depth: int):
        if arity < 2:
            raise ValueError(f"arity must be >= 2, got {arity}")
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        self.arity = arity
        self.depth = depth

    def __repr__(self) -> str:
        return f"VirtualTree(arity={self.arity}, depth={self.depth})"

    @property
    def num_nodes(self) -> int:
        return sum(self.arity**l for l in range(self.depth + 1))

    def nodes(self) -> Iterator[GridCoord]:
        for level in range(self.depth + 1):
            for index in range(self.arity**level):
                yield (level, index)

    def __contains__(self, coord: GridCoord) -> bool:
        if not isinstance(coord, tuple) or len(coord) != 2:
            return False
        level, index = coord
        return 0 <= level <= self.depth and 0 <= index < self.arity**level

    def parent(self, coord: GridCoord) -> Optional[GridCoord]:
        """Parent address, or None for the root."""
        self.validate_member(coord)
        level, index = coord
        if level == 0:
            return None
        return (level - 1, index // self.arity)

    def children(self, coord: GridCoord) -> List[GridCoord]:
        """Child addresses (empty for leaves)."""
        self.validate_member(coord)
        level, index = coord
        if level == self.depth:
            return []
        return [(level + 1, self.arity * index + j) for j in range(self.arity)]

    def neighbors(self, coord: GridCoord) -> List[GridCoord]:
        out = self.children(coord)
        p = self.parent(coord)
        if p is not None:
            out.append(p)
        return out

    def _path_to_root(self, coord: GridCoord) -> List[GridCoord]:
        path = [coord]
        node: Optional[GridCoord] = coord
        while True:
            node = self.parent(node)  # type: ignore[arg-type]
            if node is None:
                break
            path.append(node)
        return path

    def hop_distance(self, a: GridCoord, b: GridCoord) -> int:
        return len(self.route(a, b)) - 1

    def route(self, a: GridCoord, b: GridCoord) -> List[GridCoord]:
        """The unique tree path between ``a`` and ``b``."""
        self.validate_member(a)
        self.validate_member(b)
        up_a = self._path_to_root(a)
        up_b = self._path_to_root(b)
        in_b = set(up_b)
        # lowest common ancestor: first node of a's root-path present in b's.
        for i, node in enumerate(up_a):
            if node in in_b:
                lca = node
                a_part = up_a[: i + 1]
                break
        j = up_b.index(lca)
        return a_part + list(reversed(up_b[:j]))
