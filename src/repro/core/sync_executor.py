"""Synchronous (TDMA-style) execution of synthesized programs.

Section 2: *"Depending on the type of network, the model could support
synchronous algorithms (e.g., TDMA), purely asynchronous message-passing
paradigms, or a combination of the two."*  The main executor
(``repro.core.executor``) is the asynchronous one; this module provides the
synchronous counterpart: execution proceeds in global **slots**, every
message sent in slot *t* over *h* hops is delivered at the start of slot
``t + h * ceil(size)`` (one hop-unit per slot, as a TDMA schedule would
provision), and rule programs fire only at slot boundaries.

The two executors run the *same* program objects and must produce the
*same* results — only the latency accounting differs (slotted, and
therefore quantized up).  The async-vs-sync comparison is the model
ablation of experiment E1/E2 in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .coords import GridCoord
from .cost_model import CostModel, EnergyLedger, UniformCostModel
from .executor import ExecutionResult
from .program import EXFILTRATE, SEND, Message, NodeProgram
from .synthesis import SynthesizedProgram


class SynchronousGridExecutor:
    """Slot-synchronous driver for a :class:`SynthesizedProgram`.

    Parameters
    ----------
    spec:
        The synthesized program.
    cost_model:
        Energy accounting (energy is slot-independent and matches the
        asynchronous executor exactly).
    max_slots:
        Safety bound on the slot loop.
    """

    def __init__(
        self,
        spec: SynthesizedProgram,
        cost_model: Optional[CostModel] = None,
        max_slots: int = 1_000_000,
    ):
        self.spec = spec
        self.cost_model = cost_model or UniformCostModel()
        self.max_slots = max_slots
        self.grid = spec.groups.grid

    def run(self) -> ExecutionResult:
        """Execute one round; all nodes start in slot 0."""
        cm = self.cost_model
        grid = self.grid
        ledger = EnergyLedger()
        programs: Dict[GridCoord, NodeProgram] = {
            coord: self.spec.program_for(coord) for coord in grid.nodes()
        }
        exfiltrated: Dict[GridCoord, Any] = {}
        # slot -> list of (dest, message) deliveries
        in_flight: Dict[int, List[Tuple[GridCoord, Message]]] = {}
        messages = 0
        data_units = 0.0
        hop_units = 0.0
        events = 0
        last_slot = 0

        def realize(coord: GridCoord, effects, slot: int) -> None:
            nonlocal messages, data_units, hop_units, last_slot
            ops = sum(e.operations for e in effects)
            if ops:
                ledger.charge(coord, cm.compute_energy(ops), "compute")
            for effect in effects:
                if effect.kind == SEND:
                    assert effect.destination and effect.message
                    dest = effect.destination
                    size = effect.message.size_units
                    path = grid.route(coord, dest)
                    hops = len(path) - 1
                    for a, b in zip(path, path[1:]):
                        ledger.charge(a, cm.tx_energy(size), "tx")
                        ledger.charge(b, cm.rx_energy(size), "rx")
                    arrival = slot + max(1, hops * math.ceil(size))
                    in_flight.setdefault(arrival, []).append(
                        (dest, effect.message)
                    )
                    messages += 1
                    data_units += size
                    hop_units += size * hops
                    last_slot = max(last_slot, arrival)
                elif effect.kind == EXFILTRATE:
                    exfiltrated[coord] = effect.payload
                    last_slot = max(last_slot, slot)

        # slot 0: every node senses
        for coord in grid.nodes():
            effects = programs[coord].start()
            events += 1
            realize(coord, effects, 0)

        slot = 0
        while in_flight:
            slot += 1
            if slot > self.max_slots:
                raise RuntimeError(f"exceeded {self.max_slots} slots")
            deliveries = in_flight.pop(slot, None)
            if not deliveries:
                continue
            # deterministic order: by destination, then sender
            deliveries.sort(key=lambda dm: (dm[0], dm[1].sender))
            for dest, message in deliveries:
                effects = programs[dest].deliver(message)
                events += 1
                realize(dest, effects, slot)

        return ExecutionResult(
            exfiltrated=exfiltrated,
            ledger=ledger,
            latency=float(last_slot),
            messages=messages,
            data_units=data_units,
            hop_units=hop_units,
            events=events,
        )


def execute_round_sync(
    spec: SynthesizedProgram, cost_model: Optional[CostModel] = None
) -> ExecutionResult:
    """Convenience wrapper: run one synchronous round."""
    return SynchronousGridExecutor(spec, cost_model=cost_model).run()
