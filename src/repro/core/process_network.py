"""Kahn process networks: an alternative model of computation.

Figure 1 of the paper lists the candidate formalisms for the
architecture-independent algorithm specification: *"Task flow, CSP, FSM,
Process network"*.  The task-graph model (``repro.core.taskgraph``) covers
task flow and the reactive rule programs cover FSMs; this module supplies
the process-network option: deterministic Kahn semantics (processes
communicate over unbounded-order FIFO channels; reads block, writes are
asynchronous up to a capacity), useful for streaming/pipelined in-network
computations that the single-shot reduction model does not express.

Processes are Python generators that ``yield`` requests:

* ``("read", channel)`` — suspends until a token is available; the
  ``yield`` expression evaluates to the token.
* ``("write", channel, value)`` — enqueues a token (suspends while the
  channel is at capacity).
* ``("compute", operations)`` — accounts computation cost.

When processes are placed on virtual-grid nodes, each token transfer is
charged the usual per-hop tx/rx cost over the XY route between the
endpoints' nodes, and token arrival times respect path latency — the same
cost discipline as every other executor in the library.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from .coords import GridCoord
from .cost_model import CostModel, EnergyLedger, UniformCostModel
from .network_model import OrientedGrid


class DeadlockError(RuntimeError):
    """Raised when no process can make progress but some are unfinished."""


@dataclass
class Channel:
    """A FIFO channel between two processes.

    ``capacity`` bounds the number of in-flight tokens (None = unbounded,
    the classical Kahn setting); ``token_units`` is the data size charged
    per token when the network is mapped onto the grid.
    """

    name: str
    capacity: Optional[int] = None
    token_units: float = 1.0
    _queue: Deque[Tuple[float, Any]] = field(default_factory=deque, repr=False)
    writer: Optional[str] = field(default=None, repr=False)
    reader: Optional[str] = field(default=None, repr=False)
    tokens_transferred: int = field(default=0, repr=False)

    def _full(self) -> bool:
        return self.capacity is not None and len(self._queue) >= self.capacity


#: The request protocol a process generator yields.
ProcessBody = Callable[[], Generator[Tuple, Any, None]]


@dataclass
class _ProcState:
    name: str
    gen: Generator[Tuple, Any, None]
    node: Optional[GridCoord]
    clock: float = 0.0
    blocked_on: Optional[Tuple[str, Channel]] = None
    pending_value: Any = None
    finished: bool = False


class ProcessNetwork:
    """A Kahn process network with optional grid placement.

    Parameters
    ----------
    grid:
        If given, processes may be placed on virtual nodes and channel
        traffic is charged to the ledger over XY routes.
    cost_model:
        Cost functions for mapped execution.
    """

    def __init__(
        self,
        grid: Optional[OrientedGrid] = None,
        cost_model: Optional[CostModel] = None,
    ):
        self.grid = grid
        self.cost_model = cost_model or UniformCostModel()
        self.ledger = EnergyLedger()
        self._channels: Dict[str, Channel] = {}
        self._processes: Dict[str, _ProcState] = {}
        self._bodies: Dict[str, ProcessBody] = {}
        self._placements: Dict[str, GridCoord] = {}

    # -- construction -----------------------------------------------------------

    def add_channel(
        self,
        name: str,
        capacity: Optional[int] = None,
        token_units: float = 1.0,
    ) -> Channel:
        """Declare a channel; raises on duplicates."""
        if name in self._channels:
            raise ValueError(f"duplicate channel {name!r}")
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        channel = Channel(name=name, capacity=capacity, token_units=token_units)
        self._channels[name] = channel
        return channel

    def add_process(
        self,
        name: str,
        body: ProcessBody,
        node: Optional[GridCoord] = None,
    ) -> None:
        """Declare a process; ``body()`` must return a fresh generator.

        ``node`` places the process on a grid node (required for cost
        accounting when the network has a grid).
        """
        if name in self._processes or name in self._bodies:
            raise ValueError(f"duplicate process {name!r}")
        if node is not None:
            if self.grid is None:
                raise ValueError("cannot place processes without a grid")
            self.grid.validate_member(node)
            self._placements[name] = node
        self._bodies[name] = body

    def connect(self, channel: str, writer: str, reader: str) -> None:
        """Fix a channel's single writer and single reader (Kahn)."""
        ch = self._channels[channel]
        if ch.writer is not None or ch.reader is not None:
            raise ValueError(f"channel {channel!r} already connected")
        if writer not in self._bodies or reader not in self._bodies:
            raise KeyError("writer and reader must be declared processes")
        ch.writer = writer
        ch.reader = reader

    def channel(self, name: str) -> Channel:
        """Look up a channel by name."""
        return self._channels[name]

    # -- execution -----------------------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> Dict[str, float]:
        """Execute until every process finishes.

        Returns ``process name -> finish time``.  Raises
        :class:`DeadlockError` if the network blocks permanently and
        :class:`RuntimeError` past ``max_steps`` scheduler iterations.
        """
        self._processes = {
            name: _ProcState(
                name=name,
                gen=body(),
                node=self._placements.get(name),
            )
            for name, body in self._bodies.items()
        }
        for state in self._processes.values():
            self._advance(state, first=True)

        steps = 0
        while True:
            steps += 1
            if steps > max_steps:
                raise RuntimeError(f"exceeded {max_steps} scheduler steps")
            progressed = False
            unfinished = [p for p in self._processes.values() if not p.finished]
            if not unfinished:
                break
            for state in unfinished:
                if self._try_unblock(state):
                    progressed = True
            if not progressed:
                blocked = {
                    p.name: (p.blocked_on[0], p.blocked_on[1].name)
                    for p in unfinished
                    if p.blocked_on
                }
                raise DeadlockError(f"process network deadlocked: {blocked}")
        return {name: p.clock for name, p in self._processes.items()}

    # -- internals ---------------------------------------------------------------

    def _charge_transfer(self, ch: Channel, send_time: float) -> float:
        """Charge one token's movement; return its arrival time."""
        ch.tokens_transferred += 1
        if self.grid is None or ch.writer is None or ch.reader is None:
            return send_time
        src = self._placements.get(ch.writer)
        dst = self._placements.get(ch.reader)
        if src is None or dst is None:
            return send_time
        path = self.grid.route(src, dst)
        for a, b in zip(path, path[1:]):
            self.ledger.charge(a, self.cost_model.tx_energy(ch.token_units), "tx")
            self.ledger.charge(b, self.cost_model.rx_energy(ch.token_units), "rx")
        return send_time + self.cost_model.path_latency(ch.token_units, len(path) - 1)

    def _advance(self, state: _ProcState, first: bool = False, value: Any = None) -> None:
        """Resume a process until it blocks or finishes."""
        try:
            request = state.gen.send(None if first else value)
        except StopIteration:
            state.finished = True
            return
        while True:
            kind = request[0]
            if kind == "compute":
                ops = float(request[1])
                if state.node is not None:
                    self.ledger.charge(
                        state.node, self.cost_model.compute_energy(ops), "compute"
                    )
                state.clock += self.cost_model.compute_latency(ops)
                try:
                    request = state.gen.send(None)
                except StopIteration:
                    state.finished = True
                    return
                continue
            if kind == "write":
                _, ch, token = request
                if ch._full():
                    state.blocked_on = ("write", ch)
                    state.pending_value = token
                    return
                arrival = self._charge_transfer(ch, state.clock)
                ch._queue.append((arrival, token))
                try:
                    request = state.gen.send(None)
                except StopIteration:
                    state.finished = True
                    return
                continue
            if kind == "read":
                _, ch = request
                if not ch._queue:
                    state.blocked_on = ("read", ch)
                    return
                arrival, token = ch._queue.popleft()
                state.clock = max(state.clock, arrival)
                try:
                    request = state.gen.send(token)
                except StopIteration:
                    state.finished = True
                    return
                continue
            raise ValueError(f"unknown request {request!r} from {state.name}")

    def _try_unblock(self, state: _ProcState) -> bool:
        if state.blocked_on is None:
            return False
        kind, ch = state.blocked_on
        if kind == "read":
            if not ch._queue:
                return False
            arrival, token = ch._queue.popleft()
            state.clock = max(state.clock, arrival)
            state.blocked_on = None
            self._advance(state, value=token)
            return True
        # blocked write
        if ch._full():
            return False
        arrival = self._charge_transfer(ch, state.clock)
        ch._queue.append((arrival, state.pending_value))
        state.blocked_on = None
        state.pending_value = None
        self._advance(state, value=None)
        return True
