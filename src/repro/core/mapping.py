"""Task-to-node mapping and role assignment (Section 4.2, Figure 3).

The virtual topology, cost model, and application graph feed a mapping
stage that assigns every task to a virtual-grid node subject to the two
design-time constraints of Section 4.1:

* **Coverage** — each leaf (sampling) task maps to a *distinct* grid node,
  and there are exactly as many leaves as grid nodes, so every point of
  coverage is sampled.
* **Spatial correlation** — all children of a given task represent a single
  contiguous geographic extent, so boundary information merged at the
  parent achieves maximum compression.

:func:`recursive_quadrant_mapping` reproduces the paper's mapping (Figure
3): leaf tasks map to their own grid cell and each interior task maps to
the leader of its block under the group-formation middleware — with the
NW-leader policy the root lands on location 0 and the level-1 tasks on
locations 0, 4, 8, 12 exactly as the paper states.

Alternative mappers (center-leader, random-leader, sink-rooted) support the
energy-balance ablation (experiment E6) and the centralized baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .coords import GridCoord, morton_decode
from .cost_model import CostModel, EnergyLedger, UniformCostModel
from .groups import HierarchicalGroups
from .network_model import OrientedGrid
from .taskgraph import Task, TaskGraph, TaskId


@dataclass
class Mapping:
    """An assignment of every task of a :class:`TaskGraph` to a grid node.

    Attributes
    ----------
    graph:
        The mapped task graph.
    grid:
        The virtual topology the tasks are placed on.
    placement:
        Task id -> grid coordinate.
    """

    graph: TaskGraph
    grid: OrientedGrid
    placement: Dict[TaskId, GridCoord] = field(default_factory=dict)

    def place(self, tid: TaskId, coord: GridCoord) -> None:
        """Assign ``tid`` to ``coord`` (validates grid membership)."""
        if tid not in self.graph:
            raise KeyError(f"unknown task {tid!r}")
        self.grid.validate_member(coord)
        self.placement[tid] = coord

    def location(self, tid: TaskId) -> GridCoord:
        """Where ``tid`` was placed; raises ``KeyError`` if unmapped."""
        return self.placement[tid]

    def is_complete(self) -> bool:
        """True iff every task has a location."""
        return all(t.tid in self.placement for t in self.graph.tasks())

    def tasks_at(self, coord: GridCoord) -> List[TaskId]:
        """All tasks co-located at ``coord``."""
        return [tid for tid, c in self.placement.items() if c == coord]

    # -- cost (Section 4.2's evaluation of a mapping) -------------------------

    def communication_cost(
        self, cost_model: Optional[CostModel] = None
    ) -> Tuple[float, float]:
        """(total energy, critical-path latency) of one execution round.

        Every edge ``src -> dst`` moves its annotated ``data_units`` along
        a shortest grid path between the mapped locations; energy is
        charged per hop (tx + rx), latency accumulates along the task
        graph's critical path assuming level-parallel execution.
        """
        cm = cost_model or UniformCostModel()
        total_energy = 0.0
        finish: Dict[TaskId, float] = {}
        for task in self.graph.topological_order():
            ready = 0.0
            for pred in self.graph.predecessors(task.tid):
                units = self.graph.edge_units(pred, task.tid)
                hops = self.grid.hop_distance(
                    self.placement[pred], self.placement[task.tid]
                )
                total_energy += cm.path_energy(units, hops)
                arrival = finish[pred] + cm.path_latency(units, hops)
                ready = max(ready, arrival)
            compute = task.annotations.get("operations", 0.0)
            total_energy += cm.compute_energy(compute)
            finish[task.tid] = ready + cm.compute_latency(compute)
        latency = max(finish.values()) if finish else 0.0
        return total_energy, latency

    def per_node_energy(
        self, cost_model: Optional[CostModel] = None
    ) -> EnergyLedger:
        """Ledger of energy charged to every grid node for one round.

        Relay nodes along each XY route are charged tx+rx for forwarding,
        endpoints are charged their half, matching the uniform cost model's
        accounting (every unit transmitted and received costs one unit at
        the node doing it).
        """
        cm = cost_model or UniformCostModel()
        ledger = EnergyLedger()
        for src, dst, units in self.graph.edges():
            path = self.grid.route(self.placement[src], self.placement[dst])
            for a, b in zip(path, path[1:]):
                ledger.charge(a, cm.tx_energy(units), "tx")
                ledger.charge(b, cm.rx_energy(units), "rx")
        for task in self.graph.tasks():
            ops = task.annotations.get("operations", 0.0)
            if ops:
                ledger.charge(
                    self.placement[task.tid], cm.compute_energy(ops), "compute"
                )
        return ledger


# ---------------------------------------------------------------------------
# Constraint checkers (Section 4.1)
# ---------------------------------------------------------------------------


class ConstraintViolation(ValueError):
    """Raised when a mapping violates a design-time constraint."""


def check_coverage(mapping: Mapping) -> None:
    """Enforce the coverage constraint.

    Each leaf task must map to a *distinct* node of the virtual topology
    and the leaf count must equal the node count, so every point of
    coverage is sampled by exactly one task.
    """
    leaves = mapping.graph.leaves()
    n = mapping.grid.num_nodes
    if len(leaves) != n:
        raise ConstraintViolation(
            f"coverage: {len(leaves)} leaf tasks for {n} grid nodes"
        )
    seen: Dict[GridCoord, TaskId] = {}
    for leaf in leaves:
        coord = mapping.placement.get(leaf.tid)
        if coord is None:
            raise ConstraintViolation(f"coverage: leaf {leaf.tid!r} unmapped")
        if coord in seen:
            raise ConstraintViolation(
                f"coverage: leaves {seen[coord]!r} and {leaf.tid!r} "
                f"both map to {coord!r}"
            )
        seen[coord] = leaf.tid


def check_spatial_correlation(mapping: Mapping) -> None:
    """Enforce the spatial-correlation constraint.

    For every task, the union of the geographic extents overseen by its
    children must be a single contiguous (axis-aligned rectangular) extent.
    Extents are derived from the mapped positions of the leaf tasks beneath
    each child.
    """
    graph = mapping.graph
    footprint: Dict[TaskId, Set[GridCoord]] = {}
    for task in graph.topological_order():
        preds = graph.predecessors(task.tid)
        if not preds:
            footprint[task.tid] = {mapping.placement[task.tid]}
        else:
            cells: Set[GridCoord] = set()
            for p in preds:
                cells |= footprint[p]
            footprint[task.tid] = cells
            if not _is_full_rectangle(cells):
                raise ConstraintViolation(
                    f"spatial correlation: children of {task.tid!r} cover a "
                    f"non-contiguous extent of {len(cells)} cells"
                )


def _is_full_rectangle(cells: Set[GridCoord]) -> bool:
    """True iff ``cells`` is exactly an axis-aligned rectangle of cells."""
    if not cells:
        return False
    xs = [c[0] for c in cells]
    ys = [c[1] for c in cells]
    w = max(xs) - min(xs) + 1
    h = max(ys) - min(ys) + 1
    return w * h == len(cells)


def check_all_constraints(mapping: Mapping) -> None:
    """Run every design-time constraint check; raise on the first failure."""
    if not mapping.is_complete():
        raise ConstraintViolation("mapping is incomplete")
    check_coverage(mapping)
    check_spatial_correlation(mapping)


# ---------------------------------------------------------------------------
# Mappers
# ---------------------------------------------------------------------------


def recursive_quadrant_mapping(
    graph: TaskGraph, groups: HierarchicalGroups
) -> Mapping:
    """The paper's mapping (Figure 3) via the group-formation middleware.

    Leaf task with Morton index *m* maps to the grid cell at Morton
    position *m*; the interior task overseeing a block maps to the
    middleware's leader for that block at the task's level.  With the
    default NW-leader policy this reproduces the published assignment
    (root at location 0; level-1 tasks at 0, 4, 8, 12) and *"exploits the
    correspondence between the quad-tree structure and the idea of
    recursively dividing the topology into quadrants"*.
    """
    grid = groups.grid
    mapping = Mapping(graph=graph, grid=grid)
    for task in graph.tasks():
        corner = morton_decode(task.tid.index)
        if task.tid.level == 0:
            mapping.place(task.tid, corner)
        else:
            mapping.place(
                task.tid,
                groups.policy.leader_of_block(
                    corner, task.tid.level, groups.branching
                ),
            )
    return mapping


def sink_rooted_mapping(
    graph: TaskGraph, grid: OrientedGrid, sink: GridCoord = (0, 0)
) -> Mapping:
    """Map every interior task onto a single sink node.

    This is the *centralized* role assignment: leaves stay on their grid
    cells (coverage), all merging happens at ``sink``.  Satisfies coverage
    but concentrates energy drain — the counterpoint in the paper's
    divide-and-conquer vs. centralized design-flow example (Section 2).
    """
    grid.validate_member(sink)
    mapping = Mapping(graph=graph, grid=grid)
    for task in graph.tasks():
        if task.tid.level == 0:
            mapping.place(task.tid, morton_decode(task.tid.index))
        else:
            mapping.place(task.tid, sink)
    return mapping


def exhaustive_best_mapping(
    graph: TaskGraph,
    grid: OrientedGrid,
    cost_model: Optional[CostModel] = None,
    objective: str = "energy",
) -> Mapping:
    """Brute-force optimal placement of interior tasks (tiny graphs only).

    Leaves are pinned by coverage; each interior task tries every node of
    the grid, keeping the placement minimizing ``objective`` (``"energy"``
    or ``"latency"``).  Exponential — guarded to ``<= 4`` interior tasks —
    but invaluable as a test oracle: the recursive-quadrant mapping should
    be close to optimal under the uniform cost model.
    """
    interior = [t for t in graph.tasks() if graph.predecessors(t.tid)]
    if len(interior) > 4:
        raise ValueError(
            f"exhaustive mapping limited to 4 interior tasks, got {len(interior)}"
        )
    base = Mapping(graph=graph, grid=grid)
    for task in graph.tasks():
        if not graph.predecessors(task.tid):
            base.place(task.tid, morton_decode(task.tid.index))

    nodes = list(grid.nodes())
    best: Optional[Mapping] = None
    best_cost = float("inf")

    def rec(i: int, current: Mapping) -> None:
        nonlocal best, best_cost
        if i == len(interior):
            energy, latency = current.communication_cost(cost_model)
            cost = energy if objective == "energy" else latency
            if cost < best_cost:
                best_cost = cost
                best = Mapping(
                    graph=graph, grid=grid, placement=dict(current.placement)
                )
            return
        for node in nodes:
            current.placement[interior[i].tid] = node
            rec(i + 1, current)
        del current.placement[interior[i].tid]

    rec(0, base)
    assert best is not None
    return best


def mapping_table(mapping: Mapping) -> str:
    """Render a mapping as the paper's Figure 2/3 labelling: one line per
    level listing ``task-index -> grid location (Morton label)``."""
    lines: List[str] = []
    for level_tasks in mapping.graph.levels():
        level = level_tasks[0].tid.level
        cells = []
        for task in sorted(level_tasks, key=lambda t: t.tid.index):
            coord = mapping.placement[task.tid]
            from .coords import morton_encode  # local import to avoid cycle noise

            cells.append(f"{task.tid.index}->{morton_encode(coord)}@{coord}")
        lines.append(f"level {level}: " + ", ".join(cells))
    return "\n".join(lines)
