"""Hierarchical group-formation middleware (Section 3.2).

*"The concept of hierarchical groups is supported for the grid topology.
At the lowest level of hierarchy (level 0), every node is both a group
member and a group leader.  At level 1, the grid is partitioned into blocks
of 2x2 nodes.  The node in the north-west corner is designated a level 1
leader, and remaining nodes of the block are level 1 followers, and so on.
Since every node knows its own grid coordinates, it can also determine its
role as leader and/or follower at each level of the hierarchy."*

This module implements that middleware service as pure functions of grid
coordinates — exactly the property the paper exploits (role determination
without communication) — plus the cost accounting the mapping stage needs:
*"the latency and energy of transmitting a data packet from a level i
follower to the level i leader is proportional to the minimum number of
hops separating them in the virtual network graph"* (Section 4.2).

Alternative leader-placement policies (:class:`CenterLeaderPolicy`,
:class:`RandomLeaderPolicy`) are provided for the energy-balance ablation
(experiment E6 in DESIGN.md): the paper leaves the leader choice to the
middleware, so the policy is pluggable.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .coords import GridCoord, block_leader, block_members, manhattan
from .network_model import OrientedGrid


class LeaderPolicy(abc.ABC):
    """Strategy choosing which block member is the level-*k* group leader."""

    @abc.abstractmethod
    def leader_of_block(
        self, block_corner: GridCoord, level: int, branching: int
    ) -> GridCoord:
        """Leader coordinate of the block whose NW corner is ``block_corner``."""

    def name(self) -> str:
        """Short policy name used in reports."""
        return type(self).__name__


class NorthWestLeaderPolicy(LeaderPolicy):
    """The paper's policy: the node in the north-west corner leads."""

    def leader_of_block(
        self, block_corner: GridCoord, level: int, branching: int
    ) -> GridCoord:
        return block_corner


class CenterLeaderPolicy(LeaderPolicy):
    """Leader at the (north-west-rounded) centre of the block.

    Minimizes the expected member-to-leader hop distance; used as an
    ablation against the NW policy.  Note that with this policy a level-k
    leader is generally *not* a level-(k+1) leader, so the self-message
    optimization of the quad-tree program does not apply.
    """

    def leader_of_block(
        self, block_corner: GridCoord, level: int, branching: int
    ) -> GridCoord:
        offset = (branching**level - 1) // 2
        return (block_corner[0] + offset, block_corner[1] + offset)


class RandomLeaderPolicy(LeaderPolicy):
    """Deterministic pseudo-random member of each block leads.

    A seeded hash of (block corner, level) picks the member, so the policy
    is a pure function of coordinates — the property the middleware
    requires — while behaving like an arbitrary assignment for the
    energy-balance ablation.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed

    def leader_of_block(
        self, block_corner: GridCoord, level: int, branching: int
    ) -> GridCoord:
        side = branching**level
        h = hash((self.seed, block_corner, level)) & 0x7FFFFFFF
        dx = h % side
        dy = (h // side) % side
        return (block_corner[0] + dx, block_corner[1] + dy)


class HierarchicalGroups:
    """The group-formation middleware over an :class:`OrientedGrid`.

    Parameters
    ----------
    grid:
        The virtual grid topology.
    branching:
        Side growth factor per level (the paper's blocks are 2x2 at level
        1, i.e. ``branching=2``, giving quadrants — matching the quad-tree
        case study).
    policy:
        Leader placement policy; defaults to the paper's north-west rule.
    """

    def __init__(
        self,
        grid: OrientedGrid,
        branching: int = 2,
        policy: Optional[LeaderPolicy] = None,
    ):
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        self.grid = grid
        self.branching = branching
        self.policy = policy or NorthWestLeaderPolicy()
        self._max_level = self._compute_max_level()
        # the grid and policy are immutable, so leader lookups memoize;
        # profiling shows leader() dominating synthesis/execution otherwise
        self._leader_cache: Dict[Tuple[GridCoord, int], GridCoord] = {}

    def _compute_max_level(self) -> int:
        level = 0
        side = 1
        while side * self.branching <= max(self.grid.width, self.grid.height):
            side *= self.branching
            level += 1
        return level

    def __repr__(self) -> str:
        return (
            f"HierarchicalGroups(grid={self.grid!r}, branching={self.branching}, "
            f"policy={self.policy.name()}, max_level={self.max_level})"
        )

    # -- structure -----------------------------------------------------------

    @property
    def max_level(self) -> int:
        """Highest hierarchy level with blocks no larger than the grid."""
        return self._max_level

    def block_side(self, level: int) -> int:
        """Side length (in grid nodes) of a level-``level`` block."""
        self._check_level(level)
        return self.branching**level

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.max_level:
            raise ValueError(
                f"level must be in [0, {self.max_level}], got {level}"
            )

    def block_corner(self, coord: GridCoord, level: int) -> GridCoord:
        """NW corner of the level-``level`` block containing ``coord``."""
        self.grid.validate_member(coord)
        self._check_level(level)
        return block_leader(coord, level, self.branching)

    def leader(self, coord: GridCoord, level: int) -> GridCoord:
        """The level-``level`` leader responsible for ``coord``.

        With the paper's NW policy this is the block corner itself; other
        policies may place the leader elsewhere in the block.
        """
        key = (coord, level)
        cached = self._leader_cache.get(key)
        if cached is not None:
            return cached
        corner = self.block_corner(coord, level)
        chosen = self.policy.leader_of_block(corner, level, self.branching)
        self.grid.validate_member(chosen)
        self._leader_cache[key] = chosen
        return chosen

    def is_leader(self, coord: GridCoord, level: int) -> bool:
        """True iff ``coord`` is a level-``level`` leader."""
        return self.leader(coord, level) == coord

    def leadership_level(self, coord: GridCoord) -> int:
        """The highest level at which ``coord`` leads (>= 0).

        Every node leads at level 0, so the result is always defined.  With
        the NW policy this is monotone: a level-*k* leader leads all levels
        below *k* (the paper: "all level i leaders are also level i-1
        leaders").
        """
        self.grid.validate_member(coord)
        best = 0
        for level in range(1, self.max_level + 1):
            if self.is_leader(coord, level):
                best = max(best, level)
        return best

    def members(self, coord: GridCoord, level: int) -> List[GridCoord]:
        """All members of the level-``level`` group containing ``coord``.

        Members outside the grid (possible only on non-power-of-two grids)
        are excluded.
        """
        corner = self.block_corner(coord, level)
        return [
            m
            for m in block_members(corner, level, self.branching)
            if m in self.grid
        ]

    def followers(self, coord: GridCoord, level: int) -> List[GridCoord]:
        """Group members excluding the leader."""
        lead = self.leader(coord, level)
        return [m for m in self.members(coord, level) if m != lead]

    def leaders_at(self, level: int) -> Iterator[GridCoord]:
        """Iterate all level-``level`` leaders in row-major block order."""
        self._check_level(level)
        side = self.block_side(level)
        for y in range(0, self.grid.height, side):
            for x in range(0, self.grid.width, side):
                yield self.policy.leader_of_block((x, y), level, self.branching)

    def num_groups(self, level: int) -> int:
        """Number of level-``level`` groups partitioning the grid."""
        self._check_level(level)
        side = self.block_side(level)
        nx = -(-self.grid.width // side)
        ny = -(-self.grid.height // side)
        return nx * ny

    def child_leaders(self, leader: GridCoord, level: int) -> List[GridCoord]:
        """The level-``level-1`` leaders inside the level-``level`` block of
        ``leader`` — the "children" of the group in the quad-tree sense.

        For ``branching=2`` these are the four quadrant leaders.
        """
        self._check_level(level)
        if level == 0:
            return []
        corner = self.block_corner(leader, level)
        child_side = self.block_side(level - 1)
        out = []
        for dy in range(self.branching):
            for dx in range(self.branching):
                sub_corner = (
                    corner[0] + dx * child_side,
                    corner[1] + dy * child_side,
                )
                if sub_corner in self.grid:
                    out.append(
                        self.policy.leader_of_block(
                            sub_corner, level - 1, self.branching
                        )
                    )
        return out

    # -- costs (Section 4.2) --------------------------------------------------

    def follower_to_leader_hops(self, coord: GridCoord, level: int) -> int:
        """Hop count from a member to its level-``level`` leader.

        Proportionality constant for the group-communication cost
        ("proportional to the minimum number of hops separating them in
        the virtual network graph, assuming shortest path routing").
        """
        return self.grid.hop_distance(coord, self.leader(coord, level))

    def group_gather_cost(
        self, coord: GridCoord, level: int, units_per_member: float = 1.0
    ) -> Tuple[float, float]:
        """(total hop-units, max hop-units) for every follower of the group
        containing ``coord`` sending ``units_per_member`` to the leader.

        ``total`` drives the energy estimate; ``max`` drives the latency
        estimate of one gather round under shortest-path routing.
        """
        lead = self.leader(coord, level)
        total = 0.0
        worst = 0.0
        for m in self.members(coord, level):
            if m == lead:
                continue
            cost = self.grid.hop_distance(m, lead) * units_per_member
            total += cost
            worst = max(worst, cost)
        return total, worst

    def role_table(self, coord: GridCoord) -> Dict[int, str]:
        """Human-readable role of ``coord`` at every level (for reports)."""
        self.grid.validate_member(coord)
        return {
            level: ("leader" if self.is_leader(coord, level) else "follower")
            for level in range(self.max_level + 1)
        }
