"""The virtual architecture facade (Section 2, Figure 1).

*"A virtual architecture is an abstract machine model for algorithm design
and synthesis and a set of primitives that are independent of low level
protocols used to implement them in the underlying network."*

:class:`VirtualArchitecture` bundles the four components the paper lists —
network model, programming primitives, middleware services, and cost
functions — into one object that the rest of the methodology flows through:

1. :meth:`design_environment` gives the algorithm designer the primitives
   with cost accounting (rapid first-order estimation).
2. :meth:`synthesize` turns an aggregation into the Figure 4 node programs
   via the synthesis pass.
3. :meth:`execute` runs the synthesized program on the virtual topology
   (exact design-time performance).
4. ``repro.runtime.stack.DeployedStack`` later binds the same programs to
   an arbitrarily deployed physical network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cost_model import CostModel, UniformCostModel
from .executor import ExecutionResult, execute_round
from .groups import HierarchicalGroups, LeaderPolicy
from .network_model import OrientedGrid
from .primitives import PrimitiveEnvironment
from .synthesis import Aggregation, SynthesizedProgram, synthesize_quadtree_program


class VirtualArchitecture:
    """A concrete virtual architecture: grid + groups + primitives + costs.

    Parameters
    ----------
    side:
        Side of the square oriented-grid topology (the set of points of
        coverage).  Must be a power of two for the quad-tree case study.
    cost_model:
        Cost functions; defaults to the paper's uniform model.
    branching:
        Group hierarchy branching (2 = quadrants, the case-study value).
    leader_policy:
        Middleware leader placement; defaults to the paper's NW rule.
    """

    def __init__(
        self,
        side: int,
        cost_model: Optional[CostModel] = None,
        branching: int = 2,
        leader_policy: Optional[LeaderPolicy] = None,
    ):
        self.grid = OrientedGrid(side)
        self.groups = HierarchicalGroups(
            self.grid, branching=branching, policy=leader_policy
        )
        self.cost_model = cost_model or UniformCostModel()

    def __repr__(self) -> str:
        return (
            f"VirtualArchitecture(grid={self.grid!r}, "
            f"max_level={self.groups.max_level}, cost={type(self.cost_model).__name__})"
        )

    @property
    def side(self) -> int:
        """Grid side length (``sqrt(N)``)."""
        return self.grid.width

    @property
    def num_nodes(self) -> int:
        """Number of virtual nodes / points of coverage (``N``)."""
        return self.grid.num_nodes

    def design_environment(self) -> PrimitiveEnvironment:
        """A fresh primitives environment for direct algorithm design."""
        return PrimitiveEnvironment(
            self.grid, groups=self.groups, cost_model=self.cost_model
        )

    def synthesize(
        self, aggregation: Aggregation, max_level: Optional[int] = None
    ) -> SynthesizedProgram:
        """Synthesize the quad-tree reduction program for ``aggregation``."""
        return synthesize_quadtree_program(
            self.groups, aggregation, max_level=max_level
        )

    def execute(
        self,
        aggregation: Aggregation,
        max_level: Optional[int] = None,
        charge_compute: bool = True,
    ) -> ExecutionResult:
        """Synthesize and run one round on the virtual grid."""
        spec = self.synthesize(aggregation, max_level=max_level)
        return execute_round(
            spec, cost_model=self.cost_model, charge_compute=charge_compute
        )
