"""Deployment generators: where the physical nodes land on the terrain.

The paper targets *"large-scale, homogeneous, dense, arbitrarily deployed
sensor networks"*; the topology-emulation protocol only assumes at least
one node per cell with a connected intra-cell subgraph.  These generators
produce the deployment patterns used across the benchmark suite:

* :func:`uniform_random` — the canonical arbitrary dense deployment.
* :func:`perturbed_grid` — nodes intended for a lattice but scattered by
  placement error (aerial deployment).
* :func:`poisson_disk` — blue-noise spacing (minimum separation), the
  "engineered" dense deployment.
* :func:`clustered` — nodes dropped in batches (non-uniform), the case the
  paper says may call for a tree virtual topology instead.
* :func:`one_per_cell` / :func:`ensure_coverage` — enforce the coverage
  precondition of Section 5.1.

All generators take a seeded :class:`numpy.random.Generator` so every
experiment is reproducible.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .terrain import CellGrid, Point, Terrain


def _rng(seed_or_rng) -> np.random.Generator:
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def uniform_random(
    n: int, terrain: Terrain, rng: "np.random.Generator | int | None" = None
) -> List[Point]:
    """``n`` positions i.i.d. uniform over the terrain."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    r = _rng(rng)
    pts = r.uniform(0.0, terrain.side, size=(n, 2))
    return [(float(x), float(y)) for x, y in pts]


def perturbed_grid(
    nodes_per_side: int,
    terrain: Terrain,
    jitter_fraction: float = 0.25,
    rng: "np.random.Generator | int | None" = None,
) -> List[Point]:
    """A ``nodes_per_side**2`` lattice with Gaussian placement error.

    ``jitter_fraction`` scales the error's standard deviation relative to
    the lattice pitch; positions are clamped to the terrain.
    """
    if nodes_per_side <= 0:
        raise ValueError("nodes_per_side must be positive")
    if jitter_fraction < 0:
        raise ValueError("jitter_fraction must be non-negative")
    r = _rng(rng)
    pitch = terrain.side / nodes_per_side
    out: List[Point] = []
    for j in range(nodes_per_side):
        for i in range(nodes_per_side):
            x = (i + 0.5) * pitch + r.normal(0.0, jitter_fraction * pitch)
            y = (j + 0.5) * pitch + r.normal(0.0, jitter_fraction * pitch)
            out.append(
                (
                    float(min(max(x, 0.0), terrain.side)),
                    float(min(max(y, 0.0), terrain.side)),
                )
            )
    return out


def poisson_disk(
    terrain: Terrain,
    min_separation: float,
    rng: "np.random.Generator | int | None" = None,
    max_attempts: int = 30,
) -> List[Point]:
    """Blue-noise deployment via Bridson's dart-throwing algorithm.

    Produces a maximal set of points pairwise at least ``min_separation``
    apart — a dense but regular deployment.
    """
    if min_separation <= 0:
        raise ValueError("min_separation must be positive")
    r = _rng(rng)
    cell = min_separation / math.sqrt(2.0)
    gw = int(math.ceil(terrain.side / cell))
    grid: List[Optional[int]] = [None] * (gw * gw)
    points: List[Point] = []
    active: List[int] = []

    def grid_index(p: Point) -> int:
        gx = min(int(p[0] / cell), gw - 1)
        gy = min(int(p[1] / cell), gw - 1)
        return gy * gw + gx

    def fits(p: Point) -> bool:
        gx = min(int(p[0] / cell), gw - 1)
        gy = min(int(p[1] / cell), gw - 1)
        for yy in range(max(0, gy - 2), min(gw, gy + 3)):
            for xx in range(max(0, gx - 2), min(gw, gx + 3)):
                idx = grid[yy * gw + xx]
                if idx is not None:
                    q = points[idx]
                    if math.hypot(p[0] - q[0], p[1] - q[1]) < min_separation:
                        return False
        return True

    first = (float(r.uniform(0, terrain.side)), float(r.uniform(0, terrain.side)))
    points.append(first)
    grid[grid_index(first)] = 0
    active.append(0)

    while active:
        pick = int(r.integers(len(active)))
        base = points[active[pick]]
        placed = False
        for _ in range(max_attempts):
            rad = min_separation * (1.0 + float(r.uniform(0.0, 1.0)))
            ang = float(r.uniform(0.0, 2.0 * math.pi))
            cand = (base[0] + rad * math.cos(ang), base[1] + rad * math.sin(ang))
            if not terrain.contains(cand):
                continue
            if fits(cand):
                points.append(cand)
                grid[grid_index(cand)] = len(points) - 1
                active.append(len(points) - 1)
                placed = True
                break
        if not placed:
            active.pop(pick)
    return points


def clustered(
    n_clusters: int,
    nodes_per_cluster: int,
    terrain: Terrain,
    cluster_spread: float,
    rng: "np.random.Generator | int | None" = None,
) -> List[Point]:
    """Nodes dropped in Gaussian batches around random cluster centres —
    the non-uniform deployment that motivates tree virtual topologies."""
    if n_clusters <= 0 or nodes_per_cluster <= 0:
        raise ValueError("cluster counts must be positive")
    if cluster_spread <= 0:
        raise ValueError("cluster_spread must be positive")
    r = _rng(rng)
    out: List[Point] = []
    for _ in range(n_clusters):
        cx = float(r.uniform(0, terrain.side))
        cy = float(r.uniform(0, terrain.side))
        for _ in range(nodes_per_cluster):
            x = min(max(cx + float(r.normal(0, cluster_spread)), 0.0), terrain.side)
            y = min(max(cy + float(r.normal(0, cluster_spread)), 0.0), terrain.side)
            out.append((x, y))
    return out


def one_per_cell(
    cells: CellGrid, rng: "np.random.Generator | int | None" = None
) -> List[Point]:
    """Exactly one node uniformly placed inside every cell — the minimal
    deployment satisfying the coverage precondition."""
    r = _rng(rng)
    out: List[Point] = []
    for cell in cells.cells():
        x0, y0, x1, y1 = cells.bounds(cell)
        out.append((float(r.uniform(x0, x1)), float(r.uniform(y0, y1))))
    return out


def ensure_coverage(
    positions: Sequence[Point],
    cells: CellGrid,
    rng: "np.random.Generator | int | None" = None,
) -> List[Point]:
    """Return ``positions`` augmented with one extra node at the centre of
    every cell that has none.

    Section 5.1 assumes *"there is at least one sensor node in each
    geographic cell"*; experiments with random deployments use this helper
    to make the precondition hold while recording how many cells needed
    patching (``len(result) - len(positions)``).
    """
    covered = set()
    for p in positions:
        covered.add(cells.cell_of(p))
    out = list(positions)
    r = _rng(rng)
    for cell in cells.cells():
        if cell not in covered:
            x0, y0, x1, y1 = cells.bounds(cell)
            # small jitter around the centre keeps leader election nontrivial
            cx, cy = cells.center(cell)
            span = cells.cell_side / 4.0
            out.append(
                (
                    float(min(max(cx + r.uniform(-span, span), x0), x1)),
                    float(min(max(cy + r.uniform(-span, span), y0), y1)),
                )
            )
    return out


def punch_hole(
    positions: Sequence[Point],
    cells: CellGrid,
    hole_cells: Sequence[Tuple[int, int]],
) -> List[Point]:
    """Remove every node inside the given cells (a coverage hole).

    Produces deployments that *violate* the Section 5.1 coverage
    precondition on purpose — the negative-space input for studying how
    the protocols detect and report infeasible deployments (experiment
    E8's precondition-failure path).
    """
    holes = set(hole_cells)
    for cell in holes:
        if not cells.contains_cell(cell):
            raise ValueError(f"{cell!r} is not a cell of the grid")
    return [p for p in positions if cells.cell_of(p) not in holes]


def density_per_cell(positions: Sequence[Point], cells: CellGrid) -> List[int]:
    """Node count of every cell (row-major) — deployment diagnostics."""
    counts = {cell: 0 for cell in cells.cells()}
    for p in positions:
        counts[cells.cell_of(p)] += 1
    return [counts[c] for c in cells.cells()]
