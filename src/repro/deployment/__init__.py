"""Physical deployment substrate: terrain, cells, nodes, and the real
network graph ``G_R`` of Section 5.

The paper's runtime protocols are defined over an arbitrarily, densely
deployed network on a square terrain partitioned into cells.  This package
simulates that substrate (the paper used physical motes): deployment
generators, the unit-disk connectivity graph, and per-node energy accounts.
"""

from .node import NodeDeadError, SensorNode
from .placement import (
    clustered,
    density_per_cell,
    ensure_coverage,
    one_per_cell,
    perturbed_grid,
    poisson_disk,
    punch_hole,
    uniform_random,
)
from .terrain import CellGrid, Point, Terrain, max_cell_side_for_range
from .topology import RealNetwork, build_network

__all__ = [
    "CellGrid",
    "NodeDeadError",
    "Point",
    "RealNetwork",
    "SensorNode",
    "Terrain",
    "build_network",
    "clustered",
    "density_per_cell",
    "ensure_coverage",
    "max_cell_side_for_range",
    "one_per_cell",
    "perturbed_grid",
    "poisson_disk",
    "punch_hole",
    "uniform_random",
]
