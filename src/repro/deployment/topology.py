"""The real network graph ``G_R`` (Section 5.1).

*"The real network can therefore be represented by a graph G_R = (V_R,
E_R), where vertices correspond to sensor nodes, and (i, j) in E_R iff
delta(v_i, v_j) <= r, where delta is the Euclidean distance.  We assume G_R
is connected."*

:class:`RealNetwork` builds this unit-disk graph from a deployment (with a
spatially bucketed neighbour search, so construction is near-linear in the
node count for bounded density), exposes the neighbour sets the protocols
use, and provides the connectivity checks the paper's assumptions require:
global connectivity of ``G_R`` and connectivity of every cell-induced
subgraph ``Cell(v_ij)``.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.coords import GridCoord
from .node import SensorNode
from .terrain import CellGrid, Point, Terrain


class RealNetwork:
    """The deployed physical network: nodes, unit-disk edges, cell map.

    Parameters
    ----------
    nodes:
        The deployed :class:`SensorNode` objects (ids must be unique).
    cells:
        The cell decomposition; every node is assigned the cell containing
        its position (the paper's ``CELL`` function).
    """

    def __init__(self, nodes: Sequence[SensorNode], cells: CellGrid):
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("node ids must be unique")
        self.nodes: Dict[int, SensorNode] = {n.node_id: n for n in nodes}
        self.cells = cells
        self._cell_of: Dict[int, GridCoord] = {
            n.node_id: cells.cell_of(n.position) for n in nodes
        }
        members: Dict[GridCoord, List[int]] = {}
        for nid, cell in self._cell_of.items():
            members.setdefault(cell, []).append(nid)
        self._members: Dict[GridCoord, Tuple[int, ...]] = {
            cell: tuple(sorted(ids)) for cell, ids in members.items()
        }
        raw = self._build_adjacency(nodes)
        # immutable adjacency: sorted tuples for ordered iteration, a
        # frozenset mirror for O(1) membership (the unicast hot path)
        self._adjacency: Dict[int, Tuple[int, ...]] = {
            nid: tuple(nbrs) for nid, nbrs in raw.items()
        }
        self._adjacency_sets: Dict[int, FrozenSet[int]] = {
            nid: frozenset(nbrs) for nid, nbrs in raw.items()
        }
        # alive-neighbour views are cached per node and invalidated in bulk
        # by a network-wide liveness generation counter, bumped whenever any
        # node dies or revives — neighbors() stops copying on every packet
        self._liveness_gen = 0
        self._alive_cache: Dict[int, Tuple[int, ...]] = {}
        self._alive_cache_gen = 0
        # alive cell-membership views share the same invalidation scheme:
        # topology-emulation and binding query members per maintenance round
        self._members_cache: Dict[GridCoord, Tuple[int, ...]] = {}
        self._members_cache_gen = 0
        for node in self.nodes.values():
            node._on_liveness_change = self._bump_liveness_generation

    def _bump_liveness_generation(self) -> None:
        self._liveness_gen += 1

    @property
    def liveness_generation(self) -> int:
        """Monotone counter of node death/revival events (cache key)."""
        return self._liveness_gen

    # -- construction ------------------------------------------------------------

    @staticmethod
    def _build_adjacency(nodes: Sequence[SensorNode]) -> Dict[int, List[int]]:
        """Unit-disk adjacency via spatial hashing on the max range."""
        adjacency: Dict[int, List[int]] = {n.node_id: [] for n in nodes}
        if len(nodes) < 2:
            return adjacency
        max_range = max(n.tx_range for n in nodes)
        pos = np.array([n.position for n in nodes], dtype=float)
        ids = [n.node_id for n in nodes]
        ranges = np.array([n.tx_range for n in nodes], dtype=float)
        bucket = max_range
        keys = np.floor(pos / bucket).astype(np.int64)
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for idx, (bx, by) in enumerate(keys):
            buckets.setdefault((int(bx), int(by)), []).append(idx)
        for (bx, by), members in buckets.items():
            cand: List[int] = []
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    cand.extend(buckets.get((bx + dx, by + dy), ()))
            cand_arr = np.array(cand, dtype=int)
            for i in members:
                d = np.hypot(
                    pos[cand_arr, 0] - pos[i, 0], pos[cand_arr, 1] - pos[i, 1]
                )
                # symmetric links: both radios must reach (identical nodes
                # make this the plain unit-disk condition)
                reach = np.minimum(ranges[cand_arr], ranges[i])
                for j in cand_arr[(d <= reach) & (cand_arr != i)]:
                    adjacency[ids[i]].append(ids[int(j)])
        for nid in adjacency:
            adjacency[nid] = sorted(set(adjacency[nid]))
        return adjacency

    # -- basic queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> SensorNode:
        """Look up a node by id."""
        return self.nodes[node_id]

    def node_ids(self) -> List[int]:
        """All node ids, sorted."""
        return sorted(self.nodes)

    def alive_ids(self) -> List[int]:
        """Ids of nodes that are still alive."""
        return sorted(nid for nid, n in self.nodes.items() if n.alive)

    def neighbors(self, node_id: int, alive_only: bool = True) -> Tuple[int, ...]:
        """One-hop neighbour set ``N(v_i)`` (alive nodes only by default).

        Returns an immutable sorted tuple — the full view is the stored
        adjacency itself and the alive view is served from a cache keyed by
        the liveness generation, so neither copies per call.
        """
        if not alive_only:
            return self._adjacency[node_id]
        return self.alive_neighbors(node_id)

    def alive_neighbors(self, node_id: int) -> Tuple[int, ...]:
        """Cached tuple of alive one-hop neighbours (the broadcast path)."""
        if self._alive_cache_gen != self._liveness_gen:
            self._alive_cache.clear()
            self._alive_cache_gen = self._liveness_gen
        view = self._alive_cache.get(node_id)
        if view is None:
            nodes = self.nodes
            view = tuple(j for j in self._adjacency[node_id] if nodes[j].alive)
            self._alive_cache[node_id] = view
        return view

    def neighbor_set(self, node_id: int) -> FrozenSet[int]:
        """Frozen full neighbour set — O(1) membership (the unicast path)."""
        return self._adjacency_sets[node_id]

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes."""
        pa, pb = self.nodes[a].position, self.nodes[b].position
        return math.hypot(pa[0] - pb[0], pa[1] - pb[1])

    def cell_of(self, node_id: int) -> GridCoord:
        """The cell a node emulates (``CELL(v_i)``)."""
        return self._cell_of[node_id]

    def members_of_cell(
        self, cell: GridCoord, alive_only: bool = True
    ) -> Tuple[int, ...]:
        """``Cell(v_ij)``: the nodes that collectively emulate a grid node.

        Returns an immutable sorted tuple.  The alive view is served from
        a cache keyed by the liveness generation (exactly like
        :meth:`alive_neighbors`), so per-maintenance-round callers don't
        re-filter an unchanged membership.
        """
        members = self._members.get(cell, ())
        if not alive_only:
            return members
        if self._members_cache_gen != self._liveness_gen:
            self._members_cache.clear()
            self._members_cache_gen = self._liveness_gen
        view = self._members_cache.get(cell)
        if view is None:
            nodes = self.nodes
            view = tuple(nid for nid in members if nodes[nid].alive)
            self._members_cache[cell] = view
        return view

    def intra_cell_links(
        self, node_id: int, alive_only: bool = True
    ) -> Tuple[Tuple[int, int], ...]:
        """The node's links that stay inside its own cell, sorted.

        These are the links whose loss cuts the node off from the very
        peers that could detect its failure and take over its role — the
        set a partition fault plan severs to stress in-cell failover
        (:mod:`repro.serve.chaos`) — and the complement of the
        inter-cell links the grid emulation routes over.
        """
        cell = self.cell_of(node_id)
        return tuple(
            (node_id, nbr)
            for nbr in self.neighbors(node_id, alive_only=alive_only)
            if self.cell_of(nbr) == cell
        )

    # -- mobility (repro.scenario) -------------------------------------------------

    def move_node(self, node_id: int, position: Point) -> Tuple[GridCoord, GridCoord]:
        """Re-home a node: new position, cell membership, unit-disk links.

        The node's links are recomputed against every other node under the
        same symmetric min-reach rule :meth:`_build_adjacency` uses, and
        both endpoints' adjacency views are rewritten.  Bumps the liveness
        generation so every cached view (alive neighbours, cell members,
        repair throttles, link-model probabilities) rebuilds lazily.
        Returns ``(old_cell, new_cell)``.
        """
        node = self.nodes[node_id]
        old_cell = self._cell_of[node_id]
        node.position = (float(position[0]), float(position[1]))
        new_cell = self.cells.cell_of(node.position)
        if new_cell != old_cell:
            self._cell_of[node_id] = new_cell
            old_members = [m for m in self._members.get(old_cell, ()) if m != node_id]
            if old_members:
                self._members[old_cell] = tuple(old_members)
            else:
                self._members.pop(old_cell, None)
            self._members[new_cell] = tuple(
                sorted(self._members.get(new_cell, ()) + (node_id,))
            )
        px, py = node.position
        fresh: List[int] = []
        for other in self.nodes.values():
            if other.node_id == node_id:
                continue
            d = math.hypot(px - other.position[0], py - other.position[1])
            if d <= min(node.tx_range, other.tx_range):
                fresh.append(other.node_id)
        new_nbrs = frozenset(fresh)
        old_nbrs = self._adjacency_sets[node_id]
        for gone in old_nbrs - new_nbrs:
            self._adjacency[gone] = tuple(
                v for v in self._adjacency[gone] if v != node_id
            )
            self._adjacency_sets[gone] = self._adjacency_sets[gone] - {node_id}
        for added in new_nbrs - old_nbrs:
            self._adjacency[added] = tuple(
                sorted(self._adjacency[added] + (node_id,))
            )
            self._adjacency_sets[added] = self._adjacency_sets[added] | {node_id}
        self._adjacency[node_id] = tuple(sorted(fresh))
        self._adjacency_sets[node_id] = new_nbrs
        self._bump_liveness_generation()
        return old_cell, new_cell

    def edge_count(self) -> int:
        """Number of undirected links."""
        return sum(len(v) for v in self._adjacency.values()) // 2

    def average_degree(self) -> float:
        """Mean neighbour count — the density diagnostic."""
        if not self.nodes:
            return 0.0
        return sum(len(v) for v in self._adjacency.values()) / len(self.nodes)

    # -- connectivity (the paper's standing assumptions) ----------------------------

    def _bfs(self, start: int, allowed: Optional[Set[int]] = None) -> Set[int]:
        seen = {start}
        frontier = [start]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for v in self._adjacency[u]:
                    if v in seen:
                        continue
                    if allowed is not None and v not in allowed:
                        continue
                    if not self.nodes[v].alive:
                        continue
                    seen.add(v)
                    nxt.append(v)
            frontier = nxt
        return seen

    def is_connected(self) -> bool:
        """Global connectivity of ``G_R`` over alive nodes."""
        alive = self.alive_ids()
        if len(alive) <= 1:
            return True
        return len(self._bfs(alive[0], set(alive))) == len(alive)

    def cell_subgraph_connected(self, cell: GridCoord) -> bool:
        """Connectivity of the subgraph induced by ``Cell(v_ij)``.

        Section 5.1: *"we assume that the subgraph of G_R induced by nodes
        in Cell(v_ij) is connected"* — the precondition for the intra-cell
        flooding steps of both runtime protocols.
        """
        members = self.members_of_cell(cell)
        if not members:
            return False
        if len(members) == 1:
            return True
        reached = self._bfs(members[0], set(members))
        return len(reached) == len(members)

    def all_cells_covered(self) -> bool:
        """True iff every cell holds at least one alive node."""
        return all(
            bool(self.members_of_cell(cell)) for cell in self.cells.cells()
        )

    def all_cell_subgraphs_connected(self) -> bool:
        """True iff every cell's induced subgraph is connected."""
        return all(
            self.cell_subgraph_connected(cell) for cell in self.cells.cells()
        )

    def validate_protocol_preconditions(self) -> List[str]:
        """Return a list of violated Section 5 preconditions (empty = ok)."""
        problems: List[str] = []
        if not self.all_cells_covered():
            uncovered = [
                c for c in self.cells.cells() if not self.members_of_cell(c)
            ]
            problems.append(f"{len(uncovered)} cells without alive nodes")
        else:
            broken = [
                c
                for c in self.cells.cells()
                if not self.cell_subgraph_connected(c)
            ]
            if broken:
                problems.append(
                    f"{len(broken)} cells with disconnected induced subgraphs"
                )
        if not self.is_connected():
            problems.append("G_R is not connected")
        return problems

    def shortest_hop_path(self, src: int, dst: int) -> Optional[List[int]]:
        """BFS shortest path in hops over alive nodes (None if unreachable).

        Used as the oracle against which protocol-built routes are checked.
        """
        if src == dst:
            return [src]
        parent: Dict[int, int] = {src: src}
        frontier = [src]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for v in self._adjacency[u]:
                    if v in parent or not self.nodes[v].alive:
                        continue
                    parent[v] = u
                    if v == dst:
                        path = [v]
                        while path[-1] != src:
                            path.append(parent[path[-1]])
                        return list(reversed(path))
                    nxt.append(v)
            frontier = nxt
        return None


def build_network(
    positions: Sequence[Point],
    cells: CellGrid,
    tx_range: float,
    initial_energy: float = 1e9,
) -> RealNetwork:
    """Construct a :class:`RealNetwork` of identical nodes from positions.

    Node ids are assigned in position order (0..n-1).
    """
    nodes = [
        SensorNode(
            node_id=i,
            position=p,
            tx_range=tx_range,
            initial_energy=initial_energy,
        )
        for i, p in enumerate(positions)
    ]
    return RealNetwork(nodes, cells)
