"""Terrain geometry and the cell decomposition of Section 5.

*"The underlying network consists of n identical sensor nodes deployed
over a square terrain of side D.  The terrain can be partitioned into
non-overlapping equal sized cells each of side c ... Each sensor node has a
transmission range of r."*

Physical coordinates follow the same screen convention as the virtual
grid: the origin is the terrain's **north-west** corner, ``x`` grows
eastward and ``y`` grows **southward**, so the physical cell ``(i, j)``
underlies virtual-grid node ``(i, j)`` directly and "north-west corner"
means componentwise minimum in both spaces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..core.coords import GridCoord

Point = Tuple[float, float]
"""A physical terrain position ``(x, y)`` in metres (NW origin)."""


@dataclass(frozen=True)
class Terrain:
    """A square deployment terrain of side ``side`` metres."""

    side: float

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise ValueError(f"terrain side must be positive, got {self.side}")

    def contains(self, point: Point) -> bool:
        """True iff ``point`` lies inside (or on the boundary of) the terrain."""
        x, y = point
        return 0.0 <= x <= self.side and 0.0 <= y <= self.side

    @property
    def area(self) -> float:
        """Terrain area in square metres."""
        return self.side * self.side


def max_cell_side_for_range(tx_range: float) -> float:
    """Largest cell side guaranteeing single-hop adjacency between cells.

    Two nodes in horizontally/vertically adjacent cells of side *c* are at
    most ``c * sqrt(5)`` apart (opposite corners of a 1x2 cell pair), so
    ``c <= r / sqrt(5)`` guarantees every node can reach every node of every
    adjacent cell in one hop — the classical GAF-style constant the paper's
    ``c <= r / sqrt(5)`` condition encodes.  Larger cells are allowed (the
    Section 5.1 protocol then discovers multi-hop paths), smaller cells
    waste density.
    """
    if tx_range <= 0:
        raise ValueError(f"transmission range must be positive, got {tx_range}")
    return tx_range / math.sqrt(5.0)


class CellGrid:
    """The cell decomposition of a terrain: ``cells_per_side ** 2`` square
    cells, indexed by the virtual-grid coordinate they emulate.

    Parameters
    ----------
    terrain:
        The deployment terrain.
    cells_per_side:
        Number of cells per axis; the cell side is
        ``terrain.side / cells_per_side``.
    """

    def __init__(self, terrain: Terrain, cells_per_side: int):
        if cells_per_side <= 0:
            raise ValueError(
                f"cells_per_side must be positive, got {cells_per_side}"
            )
        self.terrain = terrain
        self.cells_per_side = cells_per_side
        self.cell_side = terrain.side / cells_per_side

    def __repr__(self) -> str:
        return (
            f"CellGrid({self.cells_per_side}x{self.cells_per_side} cells of "
            f"side {self.cell_side:.3g} over terrain {self.terrain.side:.3g})"
        )

    @property
    def num_cells(self) -> int:
        """Total number of cells (= virtual nodes emulated)."""
        return self.cells_per_side**2

    def cell_of(self, point: Point) -> GridCoord:
        """The cell containing a terrain point (boundary points clamp to
        the lower-indexed cell, terrain edge clamps inward)."""
        if not self.terrain.contains(point):
            raise ValueError(f"{point!r} lies outside the terrain")
        i = min(int(point[0] / self.cell_side), self.cells_per_side - 1)
        j = min(int(point[1] / self.cell_side), self.cells_per_side - 1)
        return (i, j)

    def contains_cell(self, cell: GridCoord) -> bool:
        """True iff ``cell`` is a valid cell index."""
        i, j = cell
        return 0 <= i < self.cells_per_side and 0 <= j < self.cells_per_side

    def center(self, cell: GridCoord) -> Point:
        """Geographic centre ``C(v_ij)`` of a cell (Section 5.2)."""
        self._check(cell)
        i, j = cell
        return ((i + 0.5) * self.cell_side, (j + 0.5) * self.cell_side)

    def bounds(self, cell: GridCoord) -> Tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` of a cell."""
        self._check(cell)
        i, j = cell
        c = self.cell_side
        return (i * c, j * c, (i + 1) * c, (j + 1) * c)

    def cells(self) -> Iterator[GridCoord]:
        """Iterate all cell indices row-major."""
        for j in range(self.cells_per_side):
            for i in range(self.cells_per_side):
                yield (i, j)

    def distance_to_center(self, point: Point, cell: GridCoord) -> float:
        """Euclidean distance from ``point`` to the centre of ``cell`` —
        the delta value each node broadcasts in the binding protocol."""
        cx, cy = self.center(cell)
        return math.hypot(point[0] - cx, point[1] - cy)

    def guarantees_single_hop_adjacency(self, tx_range: float) -> bool:
        """True iff the cell side satisfies ``c <= r / sqrt(5)``."""
        return self.cell_side <= max_cell_side_for_range(tx_range) + 1e-12

    def _check(self, cell: GridCoord) -> None:
        if not self.contains_cell(cell):
            raise ValueError(
                f"{cell!r} is not a cell of this {self.cells_per_side}^2 grid"
            )
