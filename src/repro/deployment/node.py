"""Physical sensor nodes.

The paper assumes *"n identical sensor nodes"* each with a short-range
omnidirectional antenna, knowledge of its own ``(x, y)`` coordinates (from
localization, assumed done), and knowledge of the terrain boundary.  A
:class:`SensorNode` carries that state plus a residual-energy account used
by the lifetime metrics and by the "querying residual energy levels"
application of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from .terrain import Point


class NodeDeadError(RuntimeError):
    """Raised when energy is drawn from a node whose battery is exhausted."""


@dataclass
class SensorNode:
    """One physical sensor node.

    Attributes
    ----------
    node_id:
        Unique integer identity (used for deterministic tie-breaking in
        the distributed protocols).
    position:
        Terrain coordinates ``(x, y)``; known to the node via localization.
    tx_range:
        Transmission range ``r`` in terrain units.
    initial_energy:
        Battery capacity in energy units; ``math.inf``-like large default
        keeps protocol studies unconstrained unless lifetime matters.
    """

    node_id: int
    position: Point
    tx_range: float
    initial_energy: float = 1e9
    alive: bool = True
    _consumed: float = field(default=0.0, repr=False)
    #: set by the owning RealNetwork; invoked on every liveness flip so
    #: cached alive-neighbour views can be invalidated without scanning
    _on_liveness_change: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {self.node_id}")
        if self.tx_range <= 0:
            raise ValueError(f"tx_range must be positive, got {self.tx_range}")
        if self.initial_energy <= 0:
            raise ValueError(
                f"initial_energy must be positive, got {self.initial_energy}"
            )

    @property
    def x(self) -> float:
        """East-west coordinate."""
        return self.position[0]

    @property
    def y(self) -> float:
        """North-south coordinate (grows southward)."""
        return self.position[1]

    @property
    def residual_energy(self) -> float:
        """Remaining battery charge."""
        return max(0.0, self.initial_energy - self._consumed)

    @property
    def consumed_energy(self) -> float:
        """Total energy drawn so far."""
        return self._consumed

    def draw(self, amount: float) -> None:
        """Consume ``amount`` energy units; kills the node at depletion.

        Raises :class:`NodeDeadError` if the node is already dead —
        callers (the simulator) are expected to check :attr:`alive` before
        charging a dead node for activity it cannot perform.
        """
        if amount < 0:
            raise ValueError(f"cannot draw negative energy ({amount})")
        if not self.alive:
            raise NodeDeadError(f"node {self.node_id} is dead")
        self._consumed += amount
        if self._consumed >= self.initial_energy:
            self.alive = False
            self._notify_liveness()

    def kill(self) -> None:
        """Fail the node immediately (fault injection)."""
        if self.alive:
            self.alive = False
            self._notify_liveness()

    def revive(self, energy: Optional[float] = None) -> None:
        """Bring the node back (node-addition / maintenance studies).

        Resets consumption; ``energy`` replaces the battery capacity if
        given.
        """
        if energy is not None:
            if energy <= 0:
                raise ValueError("replacement energy must be positive")
            self.initial_energy = energy
        self._consumed = 0.0
        if not self.alive:
            self.alive = True
            self._notify_liveness()

    def _notify_liveness(self) -> None:
        if self._on_liveness_change is not None:
            self._on_liveness_change()
