"""In-run fault injection and the self-healing fault model (DESIGN.md §10).

The maintenance layer (:mod:`repro.runtime.maintenance`) models churn
*between* application rounds: kill nodes offline, rebuild the stack, run
again.  This module models faults *during* a round — the paper's Section 5.1
observation that the setup protocols "should execute periodically" because
nodes fail while the network operates, and its Section 7 admission that
fault tolerance is the methodology's open issue.

Three pieces:

* :class:`FaultPlan` — a declarative, seed-deterministic schedule of
  mid-run events (``kill_node``, ``kill_leader``, ``partition_links``,
  ``corrupt_frame``, ``restore``).  The :class:`FaultInjector` arms each
  event as a simulator timer, so faults fire at exact virtual times inside
  :meth:`~repro.runtime.stack.DeployedStack.run_application` and a given
  ``(plan, seed)`` pair replays byte-identically.
* :class:`HealingConfig` — parameters of the online recovery machinery in
  :class:`~repro.runtime.routing.TransportProcess`: leader heartbeats,
  miss-threshold suspicion, failover to the deterministic successor (the
  ``(metric, id)``-argmin of the surviving cell members), on-demand route
  repair, and retransmission redirection.
* :class:`FaultReport` — the observability record (injections, detections,
  failovers, reroutes, corrupted vs. rejected frames, orphaned
  deliveries), folded into the run fingerprint so fault runs are
  sweepable and reproducible.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.coords import GridCoord
from ..simulator.trace import stable_digest
from .binding import Binding, distance_to_center_metric
from .routing import TRANSPORT_KIND, CorruptedFrame

if TYPE_CHECKING:  # pragma: no cover
    from ..deployment.topology import RealNetwork
    from ..simulator.engine import Simulator
    from ..simulator.network import Packet, WirelessMedium

#: Actions a :class:`FaultEvent` may carry.
FAULT_ACTIONS = (
    "kill_node",
    "kill_leader",
    "partition_links",
    "corrupt_frame",
    "restore",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``time`` is the virtual time the event fires at.  Interpretation of
    the remaining fields depends on ``action``:

    * ``kill_node`` — kill physical node ``node``;
    * ``kill_leader`` — kill the *current* leader of ``cell`` (resolved at
      fire time, so it tracks failovers);
    * ``partition_links`` — sever every ``(a, b)`` pair in ``links``
      (symmetric) until a ``restore``;
    * ``corrupt_frame`` — mangle the next ``count`` transport frames put
      on the air (byte flip under ``wire_format``, sentinel wrapper
      otherwise);
    * ``restore`` — heal all currently blocked links; if ``node`` is
      given, also revive that node.
    """

    time: float
    action: str
    node: Optional[int] = None
    cell: Optional[GridCoord] = None
    links: Tuple[Tuple[int, int], ...] = ()
    count: int = 1

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.action == "kill_node" and self.node is None:
            raise ValueError("kill_node requires node=")
        if self.action == "kill_leader" and self.cell is None:
            raise ValueError("kill_leader requires cell=")
        if self.action == "partition_links" and not self.links:
            raise ValueError("partition_links requires a non-empty links=")
        if self.action == "corrupt_frame" and self.count < 1:
            raise ValueError(f"corrupt_frame count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of :class:`FaultEvent`\\ s."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: (e.time, e.action)))
        )

    def __bool__(self) -> bool:
        return bool(self.events)

    def fingerprint(self) -> str:
        """Stable digest of the schedule (folds into run fingerprints)."""
        return stable_digest(tuple(dataclasses.astuple(e) for e in self.events))

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Plain-dict form (sweep params / JSON grids)."""
        out = []
        for e in self.events:
            d: Dict[str, Any] = {"time": e.time, "action": e.action}
            if e.node is not None:
                d["node"] = e.node
            if e.cell is not None:
                d["cell"] = list(e.cell)
            if e.links:
                d["links"] = [list(pair) for pair in e.links]
            if e.count != 1:
                d["count"] = e.count
            out.append(d)
        return out

    @classmethod
    def from_dicts(cls, specs: Iterable[Dict[str, Any]]) -> "FaultPlan":
        """Inverse of :meth:`to_dicts` (tolerates lists where tuples go)."""
        events = []
        for spec in specs:
            cell = spec.get("cell")
            links = spec.get("links", ())
            events.append(
                FaultEvent(
                    time=float(spec["time"]),
                    action=str(spec["action"]),
                    node=spec.get("node"),
                    cell=None if cell is None else (int(cell[0]), int(cell[1])),
                    links=tuple((int(a), int(b)) for a, b in links),
                    count=int(spec.get("count", 1)),
                )
            )
        return cls(events=tuple(events))


def plan_leader_storm(
    cells: Sequence[GridCoord],
    kills: int,
    at: float = 0.5,
    spacing: float = 0.05,
    seed: int = 0,
    corrupt_frames: int = 0,
) -> FaultPlan:
    """A seeded plan killing ``kills`` distinct cell leaders mid-round.

    Victim cells are drawn without replacement from ``sorted(cells)`` with
    ``np.random.default_rng(seed)``, so the plan is a pure function of its
    arguments.  Kills land at ``at, at + spacing, ...``; optionally the
    plan also corrupts the first ``corrupt_frames`` transport frames.
    """
    if kills < 1:
        raise ValueError(f"kills must be >= 1, got {kills}")
    ordered = sorted(set(cells))
    if kills > len(ordered):
        raise ValueError(f"cannot kill {kills} leaders out of {len(ordered)} cells")
    rng = np.random.default_rng(seed)
    victims = [ordered[i] for i in rng.choice(len(ordered), size=kills, replace=False)]
    events = [
        FaultEvent(time=at + i * spacing, action="kill_leader", cell=cell)
        for i, cell in enumerate(victims)
    ]
    if corrupt_frames > 0:
        events.append(FaultEvent(time=0.0, action="corrupt_frame", count=corrupt_frames))
    return FaultPlan(events=tuple(events))


def plan_chaos(
    cells: Sequence[GridCoord],
    links: Sequence[Tuple[int, int]] = (),
    kills: int = 1,
    at: float = 0.5,
    spacing: float = 1.0,
    corrupt_frames: int = 0,
    partition_at: Optional[float] = None,
    restore_at: Optional[float] = None,
    seed: int = 0,
) -> FaultPlan:
    """A seeded mixed chaos schedule: kills + partition + corruption.

    The resilience-soak counterpart of :func:`plan_leader_storm`: kills
    ``kills`` distinct cell leaders (victims drawn without replacement
    from ``sorted(cells)`` with ``np.random.default_rng(seed)``) at
    ``at, at + spacing, ...``; optionally severs ``links`` at
    ``partition_at`` and heals them at ``restore_at``; optionally
    corrupts the first ``corrupt_frames`` transport frames.  A pure
    function of its arguments, so chaos campaigns replay byte-identically.
    """
    if kills < 0:
        raise ValueError(f"kills must be >= 0, got {kills}")
    ordered = sorted(set(cells))
    if kills > len(ordered):
        raise ValueError(f"cannot kill {kills} leaders out of {len(ordered)} cells")
    if partition_at is not None and not links:
        raise ValueError("partition_at requires a non-empty links=")
    if restore_at is not None and partition_at is None:
        raise ValueError("restore_at requires partition_at=")
    if restore_at is not None and restore_at <= partition_at:
        raise ValueError(
            f"restore_at must be > partition_at, "
            f"got {restore_at} <= {partition_at}"
        )
    events = []
    if kills:
        rng = np.random.default_rng(seed)
        victims = [
            ordered[i] for i in rng.choice(len(ordered), size=kills, replace=False)
        ]
        events.extend(
            FaultEvent(time=at + i * spacing, action="kill_leader", cell=cell)
            for i, cell in enumerate(victims)
        )
    if partition_at is not None:
        pairs = tuple((int(a), int(b)) for a, b in links)
        events.append(
            FaultEvent(time=partition_at, action="partition_links", links=pairs)
        )
        if restore_at is not None:
            events.append(FaultEvent(time=restore_at, action="restore"))
    if corrupt_frames > 0:
        events.append(
            FaultEvent(time=0.0, action="corrupt_frame", count=corrupt_frames)
        )
    return FaultPlan(events=tuple(events))


@dataclass
class HealingConfig:
    """Parameters of the online self-healing machinery.

    ``metric`` must be the same binding metric the deployment elected its
    leaders with: the failover successor is the ``(metric, id)``-argmin of
    the surviving cell members, i.e. exactly the node a fresh election
    would pick.  ``horizon`` bounds the heartbeat/watch timer re-arming so
    rounds still quiesce — past it the cell is assumed stable.
    """

    heartbeat_interval: float = 2.0
    miss_threshold: int = 3
    heartbeat_size_units: float = 0.25
    horizon: float = 200.0
    metric: Callable[["RealNetwork", int], float] = distance_to_center_metric

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        if self.horizon <= 0:
            raise ValueError("horizon must be > 0")


@dataclass
class FaultReport:
    """What happened, observed from both sides of the fault line.

    ``injected`` records events as they actually fired (time, action,
    resolved target); ``failovers`` records ``(time, cell, old_leader,
    new_leader)`` tuples.  :meth:`fingerprint` digests the whole record,
    so two runs with identical reports (and identical traffic) produce
    identical run fingerprints.
    """

    injected: List[Tuple[float, str, Any]] = field(default_factory=list)
    detected_failures: int = 0
    failovers: List[Tuple[float, GridCoord, int, int]] = field(default_factory=list)
    reroutes: int = 0
    redirected_retransmissions: int = 0
    frames_corrupted: int = 0
    frames_rejected: int = 0
    orphaned_deliveries: int = 0

    def fingerprint(self) -> str:
        return stable_digest(
            (
                tuple(self.injected),
                self.detected_failures,
                tuple(self.failovers),
                self.reroutes,
                self.redirected_retransmissions,
                self.frames_corrupted,
                self.frames_rejected,
                self.orphaned_deliveries,
            )
        )


class FaultInjector:
    """Arms a :class:`FaultPlan` on a simulator and executes its events.

    Events are scheduled with fire-and-forget timers before the run
    starts, so they occupy deterministic positions in the event order and
    never consume medium RNG draws.  Frame corruption installs a
    ``tx_transform`` on the medium that mangles the next *n* transport
    frames — under ``wire_format`` by flipping one byte (the CRC check in
    the receiver rejects the frame), otherwise by wrapping the payload in
    :class:`~repro.runtime.routing.CorruptedFrame`.

    In a space-partitioned run (``repro.partition``) every shard arms the
    full plan against its own replica — state mutations (kills, blocked
    links) must happen everywhere — but exactly one shard *owns* each
    event for reporting purposes: ``owns`` filters which firings log to
    the report, ``install_transform`` restricts the frame-corrupting
    ``tx_transform`` to the owning shard, and non-owned firings call
    ``overhead`` so the merged run can subtract the duplicate events from
    its ``events_processed`` count.
    """

    def __init__(
        self,
        plan: FaultPlan,
        network: "RealNetwork",
        binding: Binding,
        report: FaultReport,
        owns: Optional[Callable[[FaultEvent], bool]] = None,
        overhead: Optional[Callable[[], None]] = None,
        install_transform: bool = True,
    ):
        self.plan = plan
        self.network = network
        self.binding = binding
        self.report = report
        self._owns = owns
        self._overhead = overhead
        self._install_transform = install_transform
        self._corrupt_budget = 0
        self._blocked: List[Tuple[int, int]] = []
        self._medium: "Optional[WirelessMedium]" = None

    def arm(self, sim: "Simulator", medium: "WirelessMedium") -> None:
        """Schedule every event; call after processes boot, before run."""
        self._medium = medium
        if self._install_transform and any(
            e.action == "corrupt_frame" for e in self.plan.events
        ):
            medium.tx_transform = self._maybe_corrupt
        for event in self.plan.events:
            # pre-run now == 0, so relative delay == absolute fire time
            sim.schedule_fire_and_forget(event.time, self._fire, event)

    # -- event execution ---------------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        if self._owns is not None and not self._owns(event):
            # replicated (non-owned) firing: mutate state, skip the report,
            # and tell the partition runner this event is bookkeeping the
            # whole-world run would not have fired
            if self._overhead is not None:
                self._overhead()
        handler = getattr(self, f"_do_{event.action}")
        handler(event)

    def _log(self, event: FaultEvent, target: Any) -> None:
        if self._owns is None or self._owns(event):
            self.report.injected.append((event.time, event.action, target))

    def _kill(self, nid: int) -> None:
        node = self.network.node(nid)
        if node.alive:
            node.kill()

    def _do_kill_node(self, event: FaultEvent) -> None:
        assert event.node is not None
        self._kill(event.node)
        self._log(event, event.node)

    def _do_kill_leader(self, event: FaultEvent) -> None:
        assert event.cell is not None
        leader = self.binding.leaders.get(event.cell)
        if leader is not None:
            self._kill(leader)
        self._log(event, (event.cell, -1 if leader is None else leader))

    def _do_partition_links(self, event: FaultEvent) -> None:
        assert self._medium is not None
        for a, b in event.links:
            self._medium.block_link(a, b)
            self._blocked.append((a, b))
        self._log(event, event.links)

    def _do_restore(self, event: FaultEvent) -> None:
        assert self._medium is not None
        for a, b in self._blocked:
            self._medium.unblock_link(a, b)
        restored_links = tuple(self._blocked)
        self._blocked.clear()
        if event.node is not None:
            node = self.network.node(event.node)
            if not node.alive:
                node.revive()
        self._log(event, (restored_links, event.node))

    def _do_corrupt_frame(self, event: FaultEvent) -> None:
        self._corrupt_budget += event.count
        self._log(event, event.count)

    # -- frame corruption --------------------------------------------------------

    def _maybe_corrupt(self, packet: "Packet") -> "Packet":
        if self._corrupt_budget <= 0 or packet.kind != TRANSPORT_KIND:
            return packet
        self._corrupt_budget -= 1
        payload = packet.payload
        if isinstance(payload, (bytes, bytearray)):
            buf = bytearray(payload)
            # deterministic position, varied across corruptions
            buf[(self.report.frames_corrupted * 7) % len(buf)] ^= 0xFF
            mangled: Any = bytes(buf)
        else:
            mangled = CorruptedFrame(payload)
        self.report.frames_corrupted += 1
        return dataclasses.replace(packet, payload=mangled)


# -- CI self-check ----------------------------------------------------------------


def self_check(verbose: bool = True) -> bool:
    """Fault-injection matrix: kill leaders / partition / corrupt frames,
    each under ``reliable`` on and off, asserting determinism and (in
    reliable mode) recovery.  Run by the ``fault-matrix`` CI job via
    ``python -m repro faults --self-check``.
    """
    from ..core import CountAggregation, VirtualArchitecture
    from ..deployment import CellGrid, Terrain, build_network, ensure_coverage, uniform_random
    from .stack import deploy

    def say(msg: str) -> None:
        if verbose:
            print(msg)

    failures: List[str] = []
    side = 4

    def build(seed: int):
        terrain = Terrain(100.0)
        cells = CellGrid(terrain, side)
        rng = np.random.default_rng(seed)
        positions = ensure_coverage(uniform_random(140, terrain, rng), cells, rng)
        return build_network(positions, cells, tx_range=cells.cell_side * 2.3)

    def run_once(seed: int, plan: FaultPlan, reliable: bool, wire: bool):
        net = build(seed)
        stack = deploy(net)
        va = VirtualArchitecture(side)
        spec = va.synthesize(CountAggregation(lambda c: True))
        return stack.run_application(
            spec,
            loss_rate=0.05,
            rng=np.random.default_rng(seed + 2),
            reliable=reliable,
            max_retries=8,
            wire_format=wire,
            fault_plan=plan,
        )

    def check(name: str, cond: bool) -> None:
        mark = "ok" if cond else "FAIL"
        say(f"  [{mark}] {name}")
        if not cond:
            failures.append(name)

    seed = 7
    net0 = build(seed)
    stack0 = deploy(net0)
    cells = sorted(stack0.binding.leaders)
    expected = side * side

    scenarios: List[Tuple[str, FaultPlan]] = [
        ("kill-leaders", plan_leader_storm(cells, kills=2, at=0.5, seed=3)),
        (
            "partition+restore",
            FaultPlan(
                events=(
                    FaultEvent(
                        time=0.4,
                        action="partition_links",
                        links=((0, 1), (0, 2), (0, 3)),
                    ),
                    FaultEvent(time=6.0, action="restore"),
                )
            ),
        ),
        (
            "corrupt-frames",
            FaultPlan(events=(FaultEvent(time=0.0, action="corrupt_frame", count=6),)),
        ),
    ]

    for name, plan in scenarios:
        for reliable in (True, False):
            for wire in (False, True):
                label = f"{name} reliable={reliable} wire={wire}"
                say(f"fault-matrix: {label}")
                r1 = run_once(seed, plan, reliable, wire)
                r2 = run_once(seed, plan, reliable, wire)
                check(f"{label}: deterministic fingerprint", r1.fingerprint() == r2.fingerprint())
                check(f"{label}: fault report present", r1.fault_report is not None)
                if name == "kill-leaders" and reliable:
                    check(f"{label}: query completes", r1.root_payload == expected)
                    check(
                        f"{label}: failovers observed",
                        len(r1.fault_report.failovers) >= 1,
                    )
                if name == "corrupt-frames":
                    # a corrupted frame can itself be lost on the medium
                    # (loss_rate > 0), so rejected <= corrupted
                    check(
                        f"{label}: corrupted frames rejected",
                        1
                        <= r1.fault_report.frames_rejected
                        <= r1.fault_report.frames_corrupted,
                    )

    if failures:
        say(f"fault-matrix self-check: {len(failures)} FAILURES")
        return False
    say("fault-matrix self-check: all scenarios passed")
    return True
