"""Runtime maintenance: churn, failure injection, and recovery.

Section 5.1: *"Since new nodes can be added to the network or existing
nodes can leave or fail, the above protocol should execute periodically."*
Section 7 lists fault tolerance among the issues the methodology must
handle.  This module provides the failure-injection utilities used by
experiment E8 and the recovery path: after churn, re-validate the
preconditions and re-run the setup protocols (the paper's periodic
re-execution, compressed to on-demand for experiments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.coords import GridCoord
from ..core.cost_model import CostModel
from ..deployment.topology import RealNetwork
from .binding import Binding, Metric, distance_to_center_metric
from .stack import DeployedStack, deploy


def kill_random_nodes(
    network: RealNetwork,
    fraction: float,
    rng: "np.random.Generator | int | None" = None,
    spare: Sequence[int] = (),
) -> List[int]:
    """Kill a uniform random ``fraction`` of alive nodes (never those in
    ``spare``).  Returns the killed ids."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    r = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    spare_set = set(spare)
    candidates = [nid for nid in network.alive_ids() if nid not in spare_set]
    # round-half-up, NOT round(): banker's rounding makes the victim
    # count non-monotonic in fraction (1.5 -> 2 but 2.5 -> 2)
    k = math.floor(fraction * len(candidates) + 0.5)
    victims = list(r.choice(candidates, size=min(k, len(candidates)), replace=False))
    for nid in victims:
        network.node(int(nid)).kill()
    return [int(v) for v in victims]


def kill_leaders(
    network: RealNetwork,
    binding: Binding,
    cells: Optional[Sequence[GridCoord]] = None,
) -> List[int]:
    """Kill the bound leader of every cell in ``cells`` (all bound cells by
    default) — the worst-case fault for the application layer."""
    targets = list(cells) if cells is not None else list(binding.leaders)
    killed: List[int] = []
    for cell in targets:
        nid = binding.leaders.get(cell)
        if nid is not None and network.node(nid).alive:
            network.node(nid).kill()
            killed.append(nid)
    return killed


@dataclass
class RecoveryReport:
    """Outcome of one recovery cycle after churn."""

    stack: Optional[DeployedStack]
    precondition_problems: List[str]
    reelected_cells: int
    setup_messages: int
    setup_energy: float

    @property
    def recovered(self) -> bool:
        """True iff the stack came back up with preconditions intact."""
        return self.stack is not None


def recover(
    network: RealNetwork,
    previous: Optional[DeployedStack] = None,
    cost_model: Optional[CostModel] = None,
    metric: Metric = distance_to_center_metric,
) -> RecoveryReport:
    """Re-run the setup protocols after churn.

    If the surviving deployment still satisfies the Section 5
    preconditions, a fresh :class:`DeployedStack` is built (periodic
    re-execution); otherwise the report carries the violated assumptions
    and no stack — the paper's protocols have no answer once a cell is
    emptied or split, which E8 quantifies.
    """
    problems = network.validate_protocol_preconditions()
    if problems:
        return RecoveryReport(
            stack=None,
            precondition_problems=problems,
            reelected_cells=0,
            setup_messages=0,
            setup_energy=0.0,
        )
    stack = deploy(network, cost_model=cost_model, metric=metric, strict=False)
    reelected = 0
    if previous is not None:
        for cell, leader in stack.binding.leaders.items():
            if previous.binding.leaders.get(cell) != leader:
                reelected += 1
    return RecoveryReport(
        stack=stack,
        precondition_problems=[],
        reelected_cells=reelected,
        setup_messages=stack.setup.total_messages,
        setup_energy=stack.setup.total_energy,
    )


def rotate_leaders(
    network: RealNetwork,
    cost_model: Optional[CostModel] = None,
) -> DeployedStack:
    """Re-bind with the residual-energy metric — the paper's suggestion for
    periodically rotating the leader role to balance drain."""
    from .binding import residual_energy_metric

    return deploy(
        network,
        cost_model=cost_model,
        metric=residual_energy_metric,
        strict=False,
    )
