"""Clustered-mesh topology infrastructure: the paper's cited alternative.

Section 3.2: *"Other topology creation and maintenance algorithms such as
the one proposed in [17] can also be employed"* — [17] being Singh, Pathak
& Prasanna's *clustered mesh* construction.  This module implements a
faithful analogue so the two strategies can be compared (experiment E4+):

1. cluster heads are the bound cell leaders (from the Section 5.2
   election);
2. each head floods an advertisement through its own cell; border nodes
   carry it one cell over, where it is forwarded along the destination
   cell's ``toward_leader`` gradient;
3. every head thereby learns an explicit node-level route to each
   adjacent head, forming a **leader-level mesh** over the cell grid.

Unlike the cell-based routing tables of Section 5.1 (any node can forward
in any direction), the mesh concentrates transport through the heads:
simpler state (routes live only at heads) at the cost of longer paths and
head hot-spotting — the trade the comparison quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.coords import ALL_DIRECTIONS, GridCoord
from ..core.cost_model import CostModel
from ..deployment.topology import RealNetwork
from ..simulator.engine import Simulator
from ..simulator.network import Packet, WirelessMedium
from ..simulator.process import Process, ProcessHost
from .binding import Binding

#: Packet kind used by the mesh construction.
ADV_KIND = "mesh-adv"


class _MeshProcess(Process):
    """Per-node advertisement flooding / forwarding logic."""

    def __init__(self, binding: Binding, adv_size_units: float = 1.0):
        super().__init__()
        self.binding = binding
        self.adv_size_units = adv_size_units
        self.seen: Set[GridCoord] = set()  # origin cells already relayed
        self.routes: Dict[GridCoord, List[int]] = {}  # at heads only

    @property
    def my_cell(self) -> GridCoord:
        return self.medium.network.cell_of(self.node_id)

    def on_start(self) -> None:
        if self.binding.is_leader(self.node_id):
            self.seen.add(self.my_cell)
            self.broadcast(
                ADV_KIND, (self.my_cell, [self.node_id]), self.adv_size_units
            )

    def on_packet(self, packet: Packet) -> None:
        if packet.kind != ADV_KIND:
            return
        origin_cell, path = packet.payload
        my_cell = self.my_cell
        if my_cell == origin_cell:
            # intra-cell flood: relay once per origin
            if origin_cell in self.seen:
                return
            self.seen.add(origin_cell)
            self.broadcast(
                ADV_KIND, (origin_cell, path + [self.node_id]), self.adv_size_units
            )
            return
        # one cell beyond the origin: deliver toward our head, then stop
        if not _cells_adjacent(my_cell, origin_cell):
            return
        if self.node_id in path:
            return
        new_path = path + [self.node_id]
        if self.binding.is_leader(self.node_id):
            # first advertisement wins (shortest in flood order)
            if origin_cell not in self.routes:
                self.routes[origin_cell] = list(reversed(new_path))
            return
        nxt = self.binding.toward_leader.get(self.node_id)
        if nxt is not None and nxt not in path:
            self.unicast(nxt, ADV_KIND, (origin_cell, new_path), self.adv_size_units)


def _cells_adjacent(a: GridCoord, b: GridCoord) -> bool:
    return abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


@dataclass
class LeaderMesh:
    """The converged mesh: explicit head-to-head routes per adjacency.

    ``routes[(src_cell, dst_cell)]`` is the node-id path from the head of
    ``src_cell`` to the head of ``dst_cell`` (endpoints inclusive), for
    every adjacent cell pair that converged.
    """

    network: RealNetwork
    binding: Binding
    routes: Dict[Tuple[GridCoord, GridCoord], List[int]]

    def route(self, src_cell: GridCoord, dst_cell: GridCoord) -> List[int]:
        """The stored head-to-head route (raises ``KeyError`` if absent)."""
        return list(self.routes[(src_cell, dst_cell)])

    def verify(self) -> List[str]:
        """Structural checks: every adjacent covered cell pair has a
        route whose hops are radio links and whose endpoints are the two
        heads."""
        problems: List[str] = []
        cells = [
            c
            for c in self.network.cells.cells()
            if c in self.binding.leaders
        ]
        cell_set = set(cells)
        for cell in cells:
            for d in ALL_DIRECTIONS:
                nbr = d.step(cell)
                if nbr not in cell_set:
                    continue
                key = (cell, nbr)
                if key not in self.routes:
                    problems.append(f"missing route {cell} -> {nbr}")
                    continue
                path = self.routes[key]
                if path[0] != self.binding.leader_of(cell):
                    problems.append(f"route {key} does not start at the head")
                if path[-1] != self.binding.leader_of(nbr):
                    problems.append(f"route {key} does not end at the head")
                for a, b in zip(path, path[1:]):
                    if b not in self.network.neighbors(a, alive_only=False):
                        problems.append(
                            f"route {key}: {a}->{b} is not a radio link"
                        )
        return problems

    def mean_route_length(self) -> float:
        """Average hop count of the stored head-to-head routes."""
        if not self.routes:
            return 0.0
        return sum(len(p) - 1 for p in self.routes.values()) / len(self.routes)


@dataclass
class MeshResult:
    """Construction outcome: the mesh plus protocol costs."""

    mesh: LeaderMesh
    setup_time: float
    messages: int
    energy: float


def build_leader_mesh(
    network: RealNetwork,
    binding: Binding,
    cost_model: Optional[CostModel] = None,
    loss_rate: float = 0.0,
    rng: "np.random.Generator | int | None" = None,
) -> MeshResult:
    """Run the mesh-construction protocol to convergence."""
    sim = Simulator()
    medium = WirelessMedium(
        sim, network, cost_model=cost_model, loss_rate=loss_rate, rng=rng
    )
    host = ProcessHost(sim, medium)
    host.add_all(lambda nid: _MeshProcess(binding))
    host.start()
    sim.run_until_quiet()

    routes: Dict[Tuple[GridCoord, GridCoord], List[int]] = {}
    for nid, proc in host.processes.items():
        assert isinstance(proc, _MeshProcess)
        if not proc.routes:
            continue
        my_cell = network.cell_of(nid)
        for origin_cell, path in proc.routes.items():
            # stored reversed: head(my_cell) ... head(origin_cell)?  The
            # advertisement travelled origin-head -> ... -> my head; the
            # reversed path is my-head -> origin-head.
            routes[(my_cell, origin_cell)] = path
    return MeshResult(
        mesh=LeaderMesh(network=network, binding=binding, routes=routes),
        setup_time=sim.now,
        messages=medium.stats.transmissions,
        energy=medium.ledger.total,
    )
