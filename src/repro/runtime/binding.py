"""Binding virtual processes to physical nodes (Section 5.2).

Each cell elects the member closest to the cell's geographic centre; that
node *"can start executing the program specified for node v_ij in G_V"*.
The protocol is a min-flood within each cell:

* every node computes ``delta = Euclidean distance to the cell centre``
  and broadcasts it;
* messages crossing cell boundaries are suppressed (as in path setup);
* a node hearing a smaller value clears its ``leader`` flag and
  re-broadcasts the better value; at quiescence exactly one node per cell
  — the one that never heard a smaller ``delta`` — keeps ``leader=true``.

Ties are broken by node id (the paper's real-valued distances make ties
measure-zero; ids make the implementation deterministic).  While flooding,
each node remembers the neighbour it first heard the winning value from;
these ``toward_leader`` pointers form a tree rooted at the leader, which
the transport layer uses for intra-cell delivery to the bound process.

The module also provides :func:`oracle_binding` (centralized argmin) and
the hooks the paper mentions for alternative criteria: *"residual energy
level or more sophisticated metrics could also be employed ... especially
if the role of leader is to be periodically rotated"* — pass a custom
``metric`` to :func:`bind_processes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.coords import GridCoord
from ..core.cost_model import CostModel
from ..deployment.topology import RealNetwork
from ..simulator.engine import Simulator
from ..simulator.network import Packet, WirelessMedium
from ..simulator.process import Process, ProcessHost

#: Packet kind used by the election.
ELECT_KIND = "elect"

#: ``metric(network, node_id) -> float``; smaller wins.
Metric = Callable[[RealNetwork, int], float]


def distance_to_center_metric(network: RealNetwork, node_id: int) -> float:
    """The paper's default criterion: Euclidean distance to the cell centre
    (*"an effort to align the problem geometry and the network geometry as
    closely as possible"*)."""
    node = network.node(node_id)
    return network.cells.distance_to_center(node.position, network.cell_of(node_id))


def residual_energy_metric(network: RealNetwork, node_id: int) -> float:
    """Alternative criterion: prefer the member with most residual energy
    (negated so that smaller wins)."""
    return -network.node(node_id).residual_energy


class LeaderElectionProcess(Process):
    """Per-node min-flood election logic."""

    def __init__(self, metric: Metric = distance_to_center_metric,
                 msg_size_units: float = 1.0):
        super().__init__()
        self.metric = metric
        self.msg_size_units = msg_size_units
        self.cell: GridCoord = (-1, -1)
        self.my_value: Tuple[float, int] = (float("inf"), -1)
        self.best: Tuple[float, int] = (float("inf"), -1)
        self.leader = True
        self.toward_leader: Optional[int] = None

    def on_start(self) -> None:
        net = self.medium.network
        self.cell = net.cell_of(self.node_id)
        self.my_value = (self.metric(net, self.node_id), self.node_id)
        self.best = self.my_value
        self.leader = True
        self.broadcast(ELECT_KIND, (self.cell, self.best), self.msg_size_units)

    def on_packet(self, packet: Packet) -> None:
        if packet.kind != ELECT_KIND:
            return
        sender_cell, value = packet.payload
        if sender_cell != self.cell:
            return  # boundary suppression
        if value < self.best:
            self.best = value
            self.leader = False
            self.toward_leader = packet.src
            self.broadcast(ELECT_KIND, (self.cell, self.best), self.msg_size_units)


@dataclass
class Binding:
    """The converged binding: which physical node runs each virtual process.

    Attributes
    ----------
    leaders:
        ``cell -> elected node id``.
    toward_leader:
        ``node id -> next hop toward its cell's leader`` (None at the
        leader itself, and at nodes that never heard a better value —
        impossible in connected cells).
    """

    network: RealNetwork
    leaders: Dict[GridCoord, int]
    toward_leader: Dict[int, Optional[int]]
    # (liveness generation, leader) at the last gradient repair, per cell;
    # throttles on-demand repairs so each churn event rebuilds a cell's
    # gradient at most once
    _repair_generation: Dict[GridCoord, Tuple[int, Optional[int]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def leader_of(self, cell: GridCoord) -> int:
        """The bound node of ``cell`` (raises ``KeyError`` if unbound)."""
        return self.leaders[cell]

    def is_leader(self, node_id: int) -> bool:
        """True iff ``node_id`` won its cell's election."""
        return self.leaders.get(self.network.cell_of(node_id)) == node_id

    def path_to_leader(self, node_id: int) -> List[int]:
        """Follow the gradient pointers from ``node_id`` to its leader.

        Returns the node-id path inclusive of both ends; raises
        :class:`RuntimeError` on a broken or cyclic gradient.
        """
        path = [node_id]
        seen = {node_id}
        current = node_id
        while not self.is_leader(current):
            nxt = self.toward_leader.get(current)
            if nxt is None:
                raise RuntimeError(
                    f"node {current} has no gradient pointer and is not leader"
                )
            if nxt in seen:
                raise RuntimeError(f"gradient cycle at node {nxt}")
            seen.add(nxt)
            path.append(nxt)
            current = nxt
        return path

    def repair_gradient(self, cell: GridCoord) -> bool:
        """Rebuild ``cell``'s ``toward_leader`` pointers around dead nodes.

        Centralized stand-in for re-running the intra-cell election flood
        (the paper's "execute periodically" escape hatch), invoked on
        demand by the self-healing transport when a gradient hop is found
        dead.  BFS from the current leader over the *alive* intra-cell
        links, with sorted neighbour iteration so the rebuilt tree is a
        pure function of the liveness state.  Members unreachable from the
        leader get ``None`` (their envelopes stay deferred until a
        restore).  Returns True iff any pointer changed.  Throttled per
        ``(liveness generation, leader)``, so each churn event repairs a
        cell at most once; a dead or missing leader is not recorded, so
        the repair re-runs after the failover installs a successor.
        """
        net = self.network
        leader = self.leaders.get(cell)
        key = (net.liveness_generation, leader)
        if self._repair_generation.get(cell) == key:
            return False
        if leader is None or not net.node(leader).alive:
            return False
        self._repair_generation[cell] = key
        members = set(net.members_of_cell(cell))  # alive members only
        parent: Dict[int, Optional[int]] = {leader: None}
        frontier = [leader]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for v in sorted(net.neighbors(u)):
                    if v in members and v not in parent:
                        parent[v] = u
                        nxt.append(v)
            frontier = nxt
        changed = False
        for m in members:
            new = parent.get(m)  # None for the leader and for unreached
            if self.toward_leader.get(m) != new:
                self.toward_leader[m] = new
                changed = True
        return changed

    def verify(self, metric: Metric = distance_to_center_metric) -> List[str]:
        """Check against the centralized oracle: exactly one leader per
        covered cell, and it is the (metric, id)-argmin of the cell."""
        problems: List[str] = []
        oracle = oracle_binding(self.network, metric)
        for cell in self.network.cells.cells():
            members = self.network.members_of_cell(cell)
            if not members:
                if cell in self.leaders:
                    problems.append(f"cell {cell}: leader but no members")
                continue
            if cell not in self.leaders:
                problems.append(f"cell {cell}: no leader elected")
                continue
            if self.leaders[cell] != oracle[cell]:
                problems.append(
                    f"cell {cell}: elected {self.leaders[cell]}, "
                    f"oracle says {oracle[cell]}"
                )
        return problems


def oracle_binding(
    network: RealNetwork, metric: Metric = distance_to_center_metric
) -> Dict[GridCoord, int]:
    """Centralized ground truth: per-cell (metric, id)-argmin.

    ``members_of_cell`` serves a liveness-generation-cached tuple, so
    repeated oracle evaluations between churn events (the maintenance
    loop's verify-after-recover pattern) do not re-filter memberships.
    """
    out: Dict[GridCoord, int] = {}
    for cell in network.cells.cells():
        members = network.members_of_cell(cell)
        if members:
            out[cell] = min(members, key=lambda m: (metric(network, m), m))
    return out


@dataclass
class BindingResult:
    """Protocol outcome: the binding plus cost/convergence measurements."""

    binding: Binding
    setup_time: float
    messages: int
    energy: float


def bind_processes(
    network: RealNetwork,
    metric: Metric = distance_to_center_metric,
    cost_model: Optional[CostModel] = None,
    loss_rate: float = 0.0,
    rng: "np.random.Generator | int | None" = None,
    msg_size_units: float = 1.0,
) -> BindingResult:
    """Run the binding protocol to convergence and collect the result."""
    sim = Simulator()
    medium = WirelessMedium(
        sim, network, cost_model=cost_model, loss_rate=loss_rate, rng=rng
    )
    host = ProcessHost(sim, medium)
    host.add_all(lambda nid: LeaderElectionProcess(metric, msg_size_units))
    host.start()
    sim.run_until_quiet()

    leaders: Dict[GridCoord, int] = {}
    toward: Dict[int, Optional[int]] = {}
    for nid, proc in host.processes.items():
        assert isinstance(proc, LeaderElectionProcess)
        toward[nid] = proc.toward_leader
        if proc.leader:
            cell = network.cell_of(nid)
            if cell in leaders:
                # two survivors in one cell would mean non-convergence
                raise RuntimeError(
                    f"cell {cell}: multiple leaders {leaders[cell]} and {nid}"
                )
            leaders[cell] = nid
    return BindingResult(
        binding=Binding(network=network, leaders=leaders, toward_leader=toward),
        setup_time=sim.now,
        messages=medium.stats.transmissions,
        energy=medium.ledger.total,
    )
