"""Compact, versioned wire format for the deployed transport.

The runtime protocols move :class:`~repro.runtime.routing.TransportEnvelope`
objects across cell boundaries hop by hop; until this module existed they
travelled as live Python objects on a shared heap, which is exactly what
blocks cross-process and networked simulation backends (and hence
intra-run parallelism in ``repro.sweep``).  This module defines the packet
format those backends need: a struct-packed fixed header plus a tagged,
registry-driven encoding of the inner application payloads.

Frame layout (all integers big-endian / network order)::

    offset  size  field
    0       2     magic  b"RW"
    2       1     version (WIRE_VERSION)
    3       1     flags   (bit 0: HAS_UID, bit 1: IS_ACK; others reserved)
    4       4     crc32 of the whole frame with this field zeroed
    8       2     src cell x   (uint16)
    10      2     src cell y   (uint16)
    12      2     dst cell x   (uint16)
    14      2     dst cell y   (uint16)
    16      2     hops         (uint16)
    18      8     size_units   (IEEE-754 float64)
    26      12    uid: origin (uint32) + seq (uint64)   — iff HAS_UID
    ..      1     payload tag  (see the registry below)  — omitted on acks
    ..      4     payload length (uint32)
    ..      N     payload bytes

Acknowledgement frames (``IS_ACK``) always carry a uid and stop after the
header + uid block: cells, hops, and size are zero and there is no payload.

Inner payloads are encoded through a **tag registry**:

    ====== ============================================================
    tag    codec
    ====== ============================================================
    0x01   structured value: None/bool/int/float/str/bytes and
           tuples/lists/dicts/sets/frozensets thereof (sets are encoded
           sorted by element bytes so encoding is order-stable)
    0x02   :class:`repro.core.program.Message`
    0x10+  user codecs added via :func:`register_payload_codec`
    0x7F   pickle — the documented fallback for unregistered payload
           types.  Round-trips any picklable object, but its bytes are
           only guaranteed stable within one Python build, so pickled
           payloads are excluded from the golden conformance vectors
           and MUST NOT be relied on across interpreter versions.
    ====== ============================================================

Compatibility policy: any observable change to the byte layout — header
fields, value codec, built-in payload tags — is a **conscious version
bump** of :data:`WIRE_VERSION`, gated by the golden vectors under
``tests/data/wire_vectors.json``.  A decoder never guesses: an unknown
version, unknown flag bit, unknown payload tag, bad CRC, or trailing
garbage raises :class:`WireDecodeError` rather than mis-decoding.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, Callable, Dict, Optional, Tuple, Type

from .routing import TransportEnvelope

#: Version byte of the frame layout.  Bump consciously: the golden
#: vectors in ``tests/data/wire_vectors.json`` pin the current encoding.
WIRE_VERSION = 1

#: First two bytes of every frame.
MAGIC = b"RW"

_FLAG_HAS_UID = 0x01
_FLAG_IS_ACK = 0x02
_KNOWN_FLAGS = _FLAG_HAS_UID | _FLAG_IS_ACK

#: magic(2) version(1) flags(1) crc(4) sx sy dx dy hops (5 x uint16) size (f64)
_HEADER = struct.Struct("!2sBBIHHHHHd")
_UID = struct.Struct("!IQ")
_PAYLOAD_PREFIX = struct.Struct("!BI")
_F64 = struct.Struct("!d")

_U16_MAX = 0xFFFF
_U32_MAX = 0xFFFFFFFF
_U64_MAX = 0xFFFFFFFFFFFFFFFF


class WireError(ValueError):
    """Base class of both codec error directions."""


class WireEncodeError(WireError):
    """The object cannot be represented in the wire format."""


class WireDecodeError(WireError):
    """The buffer is not a well-formed frame of this version."""


# ---------------------------------------------------------------------------
# varints
# ---------------------------------------------------------------------------


def _write_uvarint(out: bytearray, n: int) -> None:
    """Unsigned LEB128 (arbitrary precision)."""
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(buf: memoryview, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise WireDecodeError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(n: int) -> int:
    # arbitrary-precision zigzag: non-negatives to even, negatives to odd
    return n * 2 if n >= 0 else -n * 2 - 1


def _unzigzag(n: int) -> int:
    return n // 2 if n % 2 == 0 else -(n + 1) // 2


# ---------------------------------------------------------------------------
# structured value codec (payload tag 0x01, also nested inside Message)
# ---------------------------------------------------------------------------

_V_NONE = 0x00
_V_TRUE = 0x01
_V_FALSE = 0x02
_V_INT = 0x03
_V_FLOAT = 0x04
_V_STR = 0x05
_V_BYTES = 0x06
_V_TUPLE = 0x07
_V_LIST = 0x08
_V_DICT = 0x09
_V_SET = 0x0A
_V_FROZENSET = 0x0B


def encode_value(value: Any) -> bytes:
    """Encode a structured value; :class:`WireEncodeError` if unsupported."""
    out = bytearray()
    _write_value(out, value)
    return bytes(out)


def _write_value(out: bytearray, value: Any) -> None:
    # bool before int: bool is an int subclass
    if value is None:
        out.append(_V_NONE)
    elif value is True:
        out.append(_V_TRUE)
    elif value is False:
        out.append(_V_FALSE)
    elif type(value) is int:
        out.append(_V_INT)
        _write_uvarint(out, _zigzag(value))
    elif type(value) is float:
        out.append(_V_FLOAT)
        out += _F64.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_V_STR)
        _write_uvarint(out, len(raw))
        out += raw
    elif type(value) is bytes:
        out.append(_V_BYTES)
        _write_uvarint(out, len(value))
        out += value
    elif type(value) is tuple:
        out.append(_V_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif type(value) is list:
        out.append(_V_LIST)
        _write_uvarint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif type(value) is dict:
        out.append(_V_DICT)
        _write_uvarint(out, len(value))
        for key, item in value.items():
            _write_value(out, key)
            _write_value(out, item)
    elif type(value) in (set, frozenset):
        # order-stable: elements sorted by their encoded bytes
        out.append(_V_SET if type(value) is set else _V_FROZENSET)
        _write_uvarint(out, len(value))
        for raw in sorted(encode_value(item) for item in value):
            out += raw
    else:
        raise WireEncodeError(
            f"value of type {type(value).__name__} is not wire-encodable"
        )


def decode_value(buf: bytes) -> Any:
    """Inverse of :func:`encode_value` (whole-buffer: trailing bytes raise)."""
    view = memoryview(buf)
    value, pos = _read_value(view, 0)
    if pos != len(view):
        raise WireDecodeError(f"{len(view) - pos} trailing bytes after value")
    return value


def _read_value(buf: memoryview, pos: int) -> Tuple[Any, int]:
    if pos >= len(buf):
        raise WireDecodeError("truncated value")
    tag = buf[pos]
    pos += 1
    if tag == _V_NONE:
        return None, pos
    if tag == _V_TRUE:
        return True, pos
    if tag == _V_FALSE:
        return False, pos
    if tag == _V_INT:
        n, pos = _read_uvarint(buf, pos)
        return _unzigzag(n), pos
    if tag == _V_FLOAT:
        if pos + 8 > len(buf):
            raise WireDecodeError("truncated float")
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag in (_V_STR, _V_BYTES):
        length, pos = _read_uvarint(buf, pos)
        if pos + length > len(buf):
            raise WireDecodeError("truncated string/bytes body")
        raw = bytes(buf[pos : pos + length])
        pos += length
        if tag == _V_STR:
            try:
                return raw.decode("utf-8"), pos
            except UnicodeDecodeError as exc:
                raise WireDecodeError(f"invalid utf-8 in string: {exc}") from None
        return raw, pos
    if tag in (_V_TUPLE, _V_LIST):
        count, pos = _read_uvarint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = _read_value(buf, pos)
            items.append(item)
        return (tuple(items) if tag == _V_TUPLE else items), pos
    if tag == _V_DICT:
        count, pos = _read_uvarint(buf, pos)
        out: Dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _read_value(buf, pos)
            value, pos = _read_value(buf, pos)
            out[key] = value
        return out, pos
    if tag in (_V_SET, _V_FROZENSET):
        count, pos = _read_uvarint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = _read_value(buf, pos)
            items.append(item)
        return (set(items) if tag == _V_SET else frozenset(items)), pos
    raise WireDecodeError(f"unknown value tag 0x{tag:02x}")


# ---------------------------------------------------------------------------
# payload registry
# ---------------------------------------------------------------------------

PAYLOAD_VALUE = 0x01
PAYLOAD_MESSAGE = 0x02
PAYLOAD_PICKLE = 0x7F

#: First / last tag available to :func:`register_payload_codec` users.
USER_TAG_FIRST = 0x10
USER_TAG_LAST = 0x7E

_EncodeFn = Callable[[Any], bytes]
_DecodeFn = Callable[[bytes], Any]

_CODECS_BY_TAG: Dict[int, Tuple[Optional[Type], _EncodeFn, _DecodeFn]] = {}
_CODECS_BY_TYPE: Dict[Type, int] = {}


def register_payload_codec(
    tag: int, cls: Type, encode: _EncodeFn, decode: _DecodeFn
) -> None:
    """Register a payload codec for ``cls`` under ``tag``.

    ``tag`` must lie in ``[USER_TAG_FIRST, USER_TAG_LAST]`` and be unused;
    re-registering a tag or a class raises :class:`ValueError` so two
    subsystems can never silently fight over the wire namespace.
    """
    if not USER_TAG_FIRST <= tag <= USER_TAG_LAST:
        raise ValueError(
            f"user payload tags must be in [0x{USER_TAG_FIRST:02x}, "
            f"0x{USER_TAG_LAST:02x}], got 0x{tag:02x}"
        )
    if tag in _CODECS_BY_TAG:
        raise ValueError(f"payload tag 0x{tag:02x} already registered")
    if cls in _CODECS_BY_TYPE:
        raise ValueError(f"payload class {cls.__name__} already registered")
    _CODECS_BY_TAG[tag] = (cls, encode, decode)
    _CODECS_BY_TYPE[cls] = tag


def unregister_payload_codec(tag: int) -> None:
    """Remove a user codec (primarily for tests)."""
    entry = _CODECS_BY_TAG.pop(tag, None)
    if entry is not None and entry[0] is not None:
        _CODECS_BY_TYPE.pop(entry[0], None)


def _encode_message(message: Any) -> bytes:
    out = bytearray()
    _write_value(out, message.kind)
    _write_value(out, tuple(message.sender))
    _write_value(out, message.payload)
    _write_uvarint(out, _zigzag(message.level))
    out += _F64.pack(message.size_units)
    return bytes(out)


def _decode_message(raw: bytes) -> Any:
    from ..core.program import Message

    view = memoryview(raw)
    kind, pos = _read_value(view, 0)
    sender, pos = _read_value(view, pos)
    payload, pos = _read_value(view, pos)
    zz, pos = _read_uvarint(view, pos)
    if pos + 8 != len(view):
        raise WireDecodeError("malformed Message payload body")
    size_units = _F64.unpack_from(view, pos)[0]
    if not isinstance(kind, str) or not isinstance(sender, tuple):
        raise WireDecodeError("malformed Message header fields")
    return Message(
        kind=kind,
        sender=sender,
        payload=payload,
        level=_unzigzag(zz),
        size_units=size_units,
    )


def encode_payload(inner: Any) -> Tuple[int, bytes]:
    """Encode an inner payload; returns ``(tag, bytes)``.

    Resolution order: an explicitly registered codec for the payload's
    class, then :class:`~repro.core.program.Message`, then the structured
    value codec, and finally — the documented fallback for unregistered
    types — pickle under :data:`PAYLOAD_PICKLE`.
    """
    from ..core.program import Message

    tag = _CODECS_BY_TYPE.get(type(inner))
    if tag is not None:
        return tag, _CODECS_BY_TAG[tag][1](inner)
    if type(inner) is Message:
        try:
            return PAYLOAD_MESSAGE, _encode_message(inner)
        except WireEncodeError:
            pass  # non-value payload inside the Message: whole-object fallback
    else:
        try:
            return PAYLOAD_VALUE, encode_value(inner)
        except WireEncodeError:
            pass
    try:
        return PAYLOAD_PICKLE, pickle.dumps(inner, protocol=4)
    except Exception as exc:
        raise WireEncodeError(
            f"payload of type {type(inner).__name__} is neither registered, "
            f"value-encodable, nor picklable: {exc}"
        ) from exc


def decode_payload(tag: int, raw: bytes) -> Any:
    """Inverse of :func:`encode_payload`."""
    if tag == PAYLOAD_VALUE:
        return decode_value(raw)
    if tag == PAYLOAD_MESSAGE:
        return _decode_message(raw)
    if tag == PAYLOAD_PICKLE:
        try:
            return pickle.loads(raw)
        except Exception as exc:
            raise WireDecodeError(f"undecodable pickle payload: {exc}") from exc
    entry = _CODECS_BY_TAG.get(tag)
    if entry is not None:
        return entry[2](raw)
    raise WireDecodeError(f"unknown payload tag 0x{tag:02x}")


# ---------------------------------------------------------------------------
# frame codec
# ---------------------------------------------------------------------------


def _check_u16(name: str, value: Any) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or not 0 <= value <= _U16_MAX:
        raise WireEncodeError(f"{name} must be an int in [0, {_U16_MAX}], got {value!r}")
    return value


def _pack_frame(
    flags: int,
    src_cell: Tuple[int, int],
    dst_cell: Tuple[int, int],
    hops: int,
    size_units: float,
    uid: Optional[Tuple[int, int]],
    payload: Optional[Tuple[int, bytes]],
) -> bytes:
    sx = _check_u16("src cell x", src_cell[0])
    sy = _check_u16("src cell y", src_cell[1])
    dx = _check_u16("dst cell x", dst_cell[0])
    dy = _check_u16("dst cell y", dst_cell[1])
    hops = _check_u16("hops", hops)
    try:
        size = float(size_units)
    except (TypeError, ValueError):
        raise WireEncodeError(f"size_units must be a float, got {size_units!r}") from None
    tail = bytearray()
    if uid is not None:
        flags |= _FLAG_HAS_UID
        origin, seq = uid
        if not isinstance(origin, int) or not 0 <= origin <= _U32_MAX:
            raise WireEncodeError(f"uid origin must be a uint32, got {origin!r}")
        if not isinstance(seq, int) or not 0 <= seq <= _U64_MAX:
            raise WireEncodeError(f"uid seq must be a uint64, got {seq!r}")
        tail += _UID.pack(origin, seq)
    if payload is not None:
        tag, raw = payload
        if len(raw) > _U32_MAX:
            raise WireEncodeError(f"payload of {len(raw)} bytes exceeds uint32 length")
        tail += _PAYLOAD_PREFIX.pack(tag, len(raw))
        tail += raw
    head = _HEADER.pack(MAGIC, WIRE_VERSION, flags, 0, sx, sy, dx, dy, hops, size)
    frame = bytearray(head + bytes(tail))
    crc = zlib.crc32(frame)
    struct.pack_into("!I", frame, 4, crc)
    return bytes(frame)


def encode_envelope(envelope: TransportEnvelope) -> bytes:
    """Serialize one :class:`TransportEnvelope` into a wire frame."""
    return _pack_frame(
        flags=0,
        src_cell=envelope.src_cell,
        dst_cell=envelope.dst_cell,
        hops=envelope.hops,
        size_units=envelope.size_units,
        uid=envelope.uid,
        payload=encode_payload(envelope.inner),
    )


def encode_ack(uid: Tuple[int, int]) -> bytes:
    """Serialize a hop-by-hop acknowledgement of ``uid``."""
    return _pack_frame(
        flags=_FLAG_IS_ACK,
        src_cell=(0, 0),
        dst_cell=(0, 0),
        hops=0,
        size_units=0.0,
        uid=uid,
        payload=None,
    )


def _unpack_frame(buf: bytes) -> Tuple[int, Tuple[Any, ...], Optional[Tuple[int, int]], bytes]:
    """Shared validation: returns (flags, header fields, uid, payload bytes)."""
    if not isinstance(buf, (bytes, bytearray, memoryview)):
        raise WireDecodeError(f"frame must be bytes, got {type(buf).__name__}")
    buf = bytes(buf)
    if len(buf) < _HEADER.size:
        raise WireDecodeError(
            f"frame of {len(buf)} bytes shorter than the {_HEADER.size}-byte header"
        )
    magic, version, flags, crc, sx, sy, dx, dy, hops, size = _HEADER.unpack_from(buf)
    if magic != MAGIC:
        raise WireDecodeError(f"bad magic {magic!r} (want {MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireDecodeError(
            f"unsupported wire version {version} (this build speaks {WIRE_VERSION})"
        )
    if flags & ~_KNOWN_FLAGS:
        raise WireDecodeError(f"unknown flag bits 0x{flags & ~_KNOWN_FLAGS:02x}")
    zeroed = bytearray(buf)
    struct.pack_into("!I", zeroed, 4, 0)
    if zlib.crc32(zeroed) != crc:
        raise WireDecodeError("CRC mismatch: frame corrupted or truncated")
    pos = _HEADER.size
    uid: Optional[Tuple[int, int]] = None
    if flags & _FLAG_HAS_UID:
        if pos + _UID.size > len(buf):
            raise WireDecodeError("truncated uid block")
        origin, seq = _UID.unpack_from(buf, pos)
        uid = (origin, seq)
        pos += _UID.size
    if flags & _FLAG_IS_ACK:
        if uid is None:
            raise WireDecodeError("ack frame without a uid")
        if pos != len(buf):
            raise WireDecodeError(f"{len(buf) - pos} trailing bytes after ack frame")
        return flags, (sx, sy, dx, dy, hops, size), uid, b""
    if pos + _PAYLOAD_PREFIX.size > len(buf):
        raise WireDecodeError("truncated payload prefix")
    tag, length = _PAYLOAD_PREFIX.unpack_from(buf, pos)
    pos += _PAYLOAD_PREFIX.size
    if pos + length != len(buf):
        raise WireDecodeError(
            f"payload length {length} does not match the {len(buf) - pos} "
            f"bytes present"
        )
    return flags, (sx, sy, dx, dy, hops, size, tag), uid, buf[pos:]


def decode_envelope(buf: bytes) -> TransportEnvelope:
    """Inverse of :func:`encode_envelope`; raises :class:`WireDecodeError`
    on anything that is not a well-formed envelope frame of this version."""
    flags, fields, uid, raw = _unpack_frame(buf)
    if flags & _FLAG_IS_ACK:
        raise WireDecodeError("frame is an acknowledgement, not an envelope")
    sx, sy, dx, dy, hops, size, tag = fields
    return TransportEnvelope(
        src_cell=(sx, sy),
        dst_cell=(dx, dy),
        inner=decode_payload(tag, raw),
        size_units=size,
        hops=hops,
        uid=uid,
    )


def decode_ack(buf: bytes) -> Tuple[int, int]:
    """Inverse of :func:`encode_ack`: the acknowledged ``(origin, seq)``."""
    flags, _fields, uid, _raw = _unpack_frame(buf)
    if not flags & _FLAG_IS_ACK:
        raise WireDecodeError("frame is an envelope, not an acknowledgement")
    assert uid is not None  # _unpack_frame enforces HAS_UID on acks
    return uid


# ---------------------------------------------------------------------------
# partition boundary packets (repro.partition, wire=True)
# ---------------------------------------------------------------------------

#: First two bytes of a boundary-packet mini-frame ("Repro Packet").
PACKET_MAGIC = b"RP"


def encode_packet(packet: Any) -> bytes:
    """Encode a radio :class:`~repro.simulator.network.Packet` for the
    shard pipes.

    The space-partitioned runner ships boundary-crossing packets between
    worker processes; under ``wire_format=True`` they travel as this
    mini-frame instead of a pickle, so cross-shard traffic is byte-framed
    end to end.  Layout: magic(2) version(1), uvarint src, uvarint
    dst + 1 (0 encodes the broadcast ``None``), uvarint-length UTF-8
    kind, f64 size_units, payload tag byte + uvarint length + payload
    bytes (via :func:`encode_payload`, so wire-mode transport frames —
    already ``bytes`` — nest without re-encoding).
    """
    out = bytearray()
    out += PACKET_MAGIC
    out.append(WIRE_VERSION)
    _write_uvarint(out, packet.src)
    _write_uvarint(out, 0 if packet.dst is None else packet.dst + 1)
    kind_raw = packet.kind.encode("utf-8")
    _write_uvarint(out, len(kind_raw))
    out += kind_raw
    out += _F64.pack(packet.size_units)
    tag, raw = encode_payload(packet.payload)
    out.append(tag)
    _write_uvarint(out, len(raw))
    out += raw
    return bytes(out)


def decode_packet(buf: bytes) -> Any:
    """Inverse of :func:`encode_packet`; raises :class:`WireDecodeError`
    on anything that is not a well-formed packet frame of this version."""
    from ..simulator.network import Packet

    view = memoryview(buf)
    if len(view) < 3:
        raise WireDecodeError("packet frame shorter than its header")
    if bytes(view[:2]) != PACKET_MAGIC:
        raise WireDecodeError(f"bad packet magic {bytes(view[:2])!r}")
    if view[2] != WIRE_VERSION:
        raise WireDecodeError(
            f"unsupported wire version {view[2]} (this build speaks {WIRE_VERSION})"
        )
    src, pos = _read_uvarint(view, 3)
    dst_plus1, pos = _read_uvarint(view, pos)
    kind_len, pos = _read_uvarint(view, pos)
    if pos + kind_len > len(view):
        raise WireDecodeError("truncated packet kind")
    kind = bytes(view[pos:pos + kind_len]).decode("utf-8")
    pos += kind_len
    if pos + 8 > len(view):
        raise WireDecodeError("truncated packet size_units")
    size_units = _F64.unpack_from(view, pos)[0]
    pos += 8
    if pos >= len(view):
        raise WireDecodeError("truncated payload tag")
    tag = view[pos]
    pos += 1
    length, pos = _read_uvarint(view, pos)
    if pos + length != len(view):
        raise WireDecodeError(
            f"payload length {length} does not match the {len(view) - pos} "
            f"bytes present"
        )
    payload = decode_payload(tag, bytes(view[pos:]))
    return Packet(
        src=src,
        kind=kind,
        payload=payload,
        size_units=size_units,
        dst=None if dst_plus1 == 0 else dst_plus1 - 1,
    )
