"""The full deployed stack: virtual architecture bound to a real network.

This module closes the paper's loop (Figure 1, bottom): the *same*
synthesized program that the design-time executor ran on the virtual grid
executes here on physical nodes —

1. :func:`deploy` runs the two Section 5 protocols (topology emulation,
   process binding) over the deployment;
2. :class:`DeployedStack.run_application` hosts each virtual node's rule
   program on the elected leader of its cell; SEND effects travel through
   the transport layer (XY cell routing over the emulated grid, gateway
   chains, leader gradients);
3. results, energy (drawn from real node batteries), time, and message
   counts are collected so EXPERIMENTS.md can compare design-time
   estimates against "deployed" measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.coords import GridCoord
from ..core.cost_model import CostModel, EnergyLedger, UniformCostModel
from ..core.program import EXFILTRATE, SEND, Effect, Message, NodeProgram
from ..core.synthesis import SynthesizedProgram
from ..deployment.topology import RealNetwork
from ..simulator.engine import Simulator
from ..simulator.network import PartitionSlice, WirelessMedium
from ..simulator.process import ProcessHost
from .binding import Binding, BindingResult, Metric, bind_processes, distance_to_center_metric
from .faults import FaultInjector, FaultPlan, FaultReport, HealingConfig
from .routing import TransportEnvelope, TransportProcess
from .topology_emulation import EmulatedTopology, EmulationResult, emulate_topology


@dataclass
class SetupReport:
    """Cost of bringing the virtual architecture up on the deployment."""

    emulation: EmulationResult
    binding: BindingResult

    @property
    def total_messages(self) -> int:
        """Protocol transmissions across both phases."""
        return self.emulation.messages + self.binding.messages

    @property
    def total_energy(self) -> float:
        """Energy drawn by both phases."""
        return self.emulation.energy + self.binding.energy


@dataclass
class DeployedRunResult:
    """Outcome of one application round on the deployed stack.

    ``exfiltrated`` is keyed by *cell* (virtual coordinate), matching the
    design-time :class:`~repro.core.executor.ExecutionResult` so the two
    can be diffed directly.
    """

    exfiltrated: Dict[GridCoord, Any]
    ledger: EnergyLedger
    latency: float
    transmissions: int
    drops: int
    delivered_envelopes: int
    events_processed: int = 0
    rejected_frames: int = 0
    fault_report: Optional[FaultReport] = None
    scenario_report: Optional[Any] = None  # repro.scenario.ScenarioReport

    @property
    def root_payload(self) -> Any:
        """The single exfiltrated payload (raises unless exactly one)."""
        if len(self.exfiltrated) != 1:
            raise ValueError(
                f"expected exactly one exfiltration, got {len(self.exfiltrated)}"
            )
        return next(iter(self.exfiltrated.values()))

    def fingerprint(self) -> str:
        """Stable digest of every deterministic observable of the round.

        Covers the energy ledger, traffic counters, latency, event count,
        rejected frames, and (when fault injection ran) the full
        :class:`~repro.runtime.faults.FaultReport` — so a seeded fault run
        is byte-reproducible across processes and shards.
        """
        from ..simulator.trace import stable_digest

        parts: Tuple[Any, ...] = (
            self.ledger.fingerprint(),
            tuple(sorted((str(c), repr(v)) for c, v in self.exfiltrated.items())),
            self.transmissions,
            self.drops,
            self.delivered_envelopes,
            self.latency,
            self.events_processed,
            self.rejected_frames,
            None if self.fault_report is None else self.fault_report.fingerprint(),
        )
        # appended only when a scenario ran, so no-scenario runs (and runs
        # with the explicit UnitDisk default) keep their historic digests
        if self.scenario_report is not None:
            parts = parts + (self.scenario_report.fingerprint(),)
        return stable_digest(parts)


class _AppProcess(TransportProcess):
    """Transport engine plus (on leaders) the synthesized rule program."""

    def __init__(
        self,
        topology: EmulatedTopology,
        binding: Binding,
        program: Optional[NodeProgram],
        result_sink: Dict[GridCoord, Any],
        counters: Dict[str, int],
        reliable: bool = False,
        max_retries: int = 3,
        ack_timeout: float = 4.0,
        wire_format: bool = False,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.5,
        healing: Optional[HealingConfig] = None,
        fault_report: Optional[FaultReport] = None,
        spec: Optional[SynthesizedProgram] = None,
    ):
        super().__init__(
            topology,
            binding,
            on_deliver=None,
            on_drop=None,
            reliable=reliable,
            max_retries=max_retries,
            ack_timeout=ack_timeout,
            wire_format=wire_format,
            backoff_factor=backoff_factor,
            backoff_jitter=backoff_jitter,
            healing=healing,
            fault_report=fault_report,
        )
        self.program = program
        self.result_sink = result_sink
        self.counters = counters
        self.spec = spec

    def on_start(self) -> None:
        super().on_start()  # arm the healing heartbeat/watch timers
        if self.program is not None:
            effects = self.program.start()
            self._realize(effects)

    def on_become_leader(self) -> None:
        # failover: adopt the cell's rule program state-fresh and restart
        # it — the quad-tree program's sender-dedup makes the re-sent
        # level-0 summary idempotent at the parent
        if self.program is None and self.spec is not None:
            self.program = self.spec.program_for(self.my_cell)
            self._realize(self.program.start())

    def _deliver(self, envelope: TransportEnvelope) -> None:
        self.counters["delivered"] += 1
        if self.program is None:
            self.counters["orphaned"] += 1
            return
        effects = self.program.deliver(envelope.inner)
        self._realize(effects)

    def _drop(self, envelope: TransportEnvelope, reason: str) -> None:
        super()._drop(envelope, reason)
        self.counters["dropped"] += 1

    def _realize(self, effects: List[Effect]) -> None:
        for effect in effects:
            if effect.kind == SEND:
                assert effect.destination is not None and effect.message is not None
                self.originate(
                    effect.destination,
                    effect.message,
                    size_units=effect.message.size_units,
                )
            elif effect.kind == EXFILTRATE:
                self.result_sink[self.my_cell] = effect.payload


class DeployedStack:
    """A virtual architecture brought up on a physical deployment.

    Construct via :func:`deploy`, which runs the setup protocols; then
    call :meth:`run_application` any number of times (each round uses a
    fresh simulator but drains the same node batteries, so lifetime
    studies can loop rounds until death).
    """

    def __init__(
        self,
        network: RealNetwork,
        topology: EmulatedTopology,
        binding: Binding,
        setup: SetupReport,
        cost_model: Optional[CostModel] = None,
    ):
        self.network = network
        self.topology = topology
        self.binding = binding
        self.setup = setup
        self.cost_model = cost_model or UniformCostModel()

    def make_harness(
        self,
        loss_rate: float = 0.0,
        rng: "np.random.Generator | int | None" = None,
        jitter: float = 0.0,
        partition: "Optional[PartitionSlice]" = None,
    ) -> Tuple[Simulator, WirelessMedium, ProcessHost]:
        """A fresh simulator/medium/host triple over this deployment.

        Every execution surface on the stack — application rounds, the
        one-shot query wrapper, and the persistent serving engine
        (:class:`~repro.serve.engine.QueryEngine`, which keeps one harness
        alive across queries) — builds its radio world through here, so
        medium wiring and cost accounting stay identical everywhere.

        ``partition`` is the space-partitioned construction path
        (``repro.partition``): the medium then owns only the slice's
        nodes, diverting boundary-crossing deliveries into egress records
        for the shard runner to exchange at window barriers.
        """
        sim = Simulator()
        medium = WirelessMedium(
            sim, self.network, cost_model=self.cost_model,
            loss_rate=loss_rate, rng=rng, jitter=jitter,
        )
        if partition is not None:
            medium.configure_partition(partition)
        return sim, medium, ProcessHost(sim, medium)

    def run_application(
        self,
        spec: SynthesizedProgram,
        loss_rate: float = 0.0,
        rng: "np.random.Generator | int | None" = None,
        max_events: int = 10_000_000,
        reliable: bool = False,
        max_retries: int = 3,
        ack_timeout: float = 4.0,
        wire_format: bool = False,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.5,
        fault_plan: Optional[FaultPlan] = None,
        healing: Optional[HealingConfig] = None,
        partitions: int = 1,
        partition_procs: Optional[int] = None,
        scenario: Any = None,
    ) -> DeployedRunResult:
        """Execute one round of the synthesized application.

        ``spec``'s grid must match the cell decomposition (one virtual
        node per cell).  Every cell's elected leader hosts the rule
        program of its virtual coordinate; all nodes forward.  With
        ``reliable`` the transport uses hop-by-hop acknowledgements and
        retransmission (seeded exponential backoff between attempts),
        making rounds robust to ``loss_rate`` at the cost of ack traffic.
        ``wire_format`` routes every hop through the compact binary codec
        of :mod:`repro.runtime.wire` — observable results are identical;
        the codec just gets exercised end to end.

        ``fault_plan`` arms mid-run fault injection (DESIGN.md §10): its
        events fire at exact virtual times inside this round.  Supplying a
        plan enables the self-healing machinery with default
        :class:`~repro.runtime.faults.HealingConfig` parameters; pass
        ``healing`` explicitly to tune them (or to enable healing without
        injecting anything).  The returned result then carries a
        :class:`~repro.runtime.faults.FaultReport` and folds it into
        :meth:`DeployedRunResult.fingerprint`.

        ``partitions=K`` (K > 1) hands the round to the space-partitioned
        runner (:mod:`repro.partition`): K cell-aligned shards advanced
        under conservative lookahead on up to ``partition_procs`` worker
        processes.  K is part of the seeded configuration (per-shard RNG
        streams); the worker count is a pure perf knob — fingerprints are
        identical for any ``partition_procs``, and ``partitions=1`` is
        byte-identical to this legacy path.

        ``scenario`` plugs in the world models of :mod:`repro.scenario`
        (DESIGN.md §14) — a :class:`~repro.scenario.Scenario` or its dict
        form: radio link model, mobility schedule, pursuit adversary, and
        duty-cycled sources.  A trivial scenario (unit-disk only) is
        dropped entirely, keeping this path byte-identical to no scenario;
        otherwise the result carries a fingerprint-folded
        :class:`~repro.scenario.ScenarioReport`.  Mobility forces healing
        on (moves re-home nodes between cells; the self-healing path is
        what re-binds them).
        """
        from ..scenario import Scenario, ScenarioInjector, ScenarioReport

        scenario = Scenario.coerce(scenario)
        if scenario is not None and scenario.is_trivial():
            scenario = None
        if partitions > 1:
            from ..partition import run_partitioned_application

            return run_partitioned_application(
                self,
                spec,
                partitions=partitions,
                procs=partition_procs,
                loss_rate=loss_rate,
                rng=rng,
                max_events=max_events,
                reliable=reliable,
                max_retries=max_retries,
                ack_timeout=ack_timeout,
                wire_format=wire_format,
                backoff_factor=backoff_factor,
                backoff_jitter=backoff_jitter,
                fault_plan=fault_plan,
                healing=healing,
                scenario=scenario,
            )
        side = self.network.cells.cells_per_side
        grid = spec.groups.grid
        if (grid.width, grid.height) != (side, side):
            raise ValueError(
                f"program grid {grid.width}x{grid.height} does not match "
                f"the {side}x{side} cell decomposition"
            )
        if healing is None and (
            fault_plan is not None
            or (scenario is not None and scenario.mobility)
        ):
            healing = HealingConfig()
        report = (
            FaultReport() if (fault_plan is not None or healing is not None) else None
        )
        sim, medium, host = self.make_harness(loss_rate=loss_rate, rng=rng)
        results: Dict[GridCoord, Any] = {}
        counters = {"delivered": 0, "dropped": 0, "orphaned": 0}
        processes: List[_AppProcess] = []

        for nid in self.network.alive_ids():
            cell = self.network.cell_of(nid)
            program = (
                spec.program_for(cell)
                if self.binding.leaders.get(cell) == nid
                else None
            )
            proc = _AppProcess(
                self.topology,
                self.binding,
                program,
                results,
                counters,
                reliable=reliable,
                max_retries=max_retries,
                ack_timeout=ack_timeout,
                wire_format=wire_format,
                backoff_factor=backoff_factor,
                backoff_jitter=backoff_jitter,
                healing=healing,
                fault_report=report,
                spec=spec,
            )
            processes.append(proc)
            host.add(nid, proc)
        host.start()
        if fault_plan:
            injector = FaultInjector(fault_plan, self.network, self.binding, report)
            injector.arm(sim, medium)
        scenario_report: Optional[ScenarioReport] = None
        scenario_injector: Optional[ScenarioInjector] = None
        if scenario is not None:
            scenario_report = ScenarioReport()
            scenario_injector = ScenarioInjector(
                scenario, self.network, self.binding, host, scenario_report
            )
            scenario_injector.arm(sim, medium)
        sim.run(max_events=max_events)
        if report is not None:
            report.orphaned_deliveries = counters["orphaned"]
        if scenario_injector is not None:
            scenario_injector.finalize()
        return DeployedRunResult(
            exfiltrated=results,
            ledger=medium.ledger,
            latency=sim.now,
            transmissions=medium.stats.transmissions,
            drops=counters["dropped"],
            delivered_envelopes=counters["delivered"],
            events_processed=sim.events_processed,
            rejected_frames=sum(p.rejected_frames for p in processes),
            fault_report=report,
            scenario_report=scenario_report,
        )


def deploy(
    network: RealNetwork,
    cost_model: Optional[CostModel] = None,
    metric: Metric = distance_to_center_metric,
    loss_rate: float = 0.0,
    rng: "np.random.Generator | int | None" = None,
    strict: bool = True,
) -> DeployedStack:
    """Bring the virtual architecture up on ``network``.

    Runs topology emulation then process binding; with ``strict`` the
    Section 5 preconditions (coverage, intra-cell connectivity, global
    connectivity) are validated first and violations raise
    :class:`RuntimeError` listing the problems.
    """
    if strict:
        problems = network.validate_protocol_preconditions()
        if problems:
            raise RuntimeError(
                "deployment violates Section 5 preconditions: "
                + "; ".join(problems)
            )
    emulation = emulate_topology(
        network, cost_model=cost_model, loss_rate=loss_rate, rng=rng
    )
    binding_result = bind_processes(
        network, metric=metric, cost_model=cost_model,
        loss_rate=loss_rate, rng=rng,
    )
    return DeployedStack(
        network=network,
        topology=emulation.topology,
        binding=binding_result.binding,
        setup=SetupReport(emulation=emulation, binding=binding_result),
        cost_model=cost_model,
    )
