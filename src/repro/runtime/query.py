"""Query execution over the deployed network (Section 3.1's decoupling).

The design-time query costs live in ``repro.apps.queries``; this module
runs the same request/response pattern over the *physical* stack: a
querier (the bound leader of an arbitrary query cell) unicasts a request
through the emulated grid to every storage leader, each replies with its
stored payload, and the querier reduces the responses.  The measured
radio cost of querying is then directly comparable with the gathering
round that populated the storage — the paper's claim that *"processing
and responding to queries could be in most cases decoupled from the
actual data gathering"*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.coords import GridCoord
from ..core.cost_model import EnergyLedger
from ..simulator.engine import Simulator
from ..simulator.network import WirelessMedium
from ..simulator.process import ProcessHost
from .routing import TransportEnvelope, TransportProcess
from .stack import DeployedStack

#: Inner-payload tags used by the query protocol.
QUERY_REQUEST = "qreq"
QUERY_RESPONSE = "qresp"


@dataclass
class DeployedQueryResult:
    """Outcome of one query round over the physical stack."""

    value: Any
    responses: int
    latency: float
    energy: float
    transmissions: int
    drops: int


class _QueryProcess(TransportProcess):
    """Per-node transport plus the storage/querier roles."""

    def __init__(
        self,
        topology,
        binding,
        stored: Optional[Any],
        is_querier: bool,
        expected_responses: int,
        response_size_of: Callable[[Any], float],
        collected: List[Any],
        counters: Dict[str, int],
        reliable: bool = False,
        wire_format: bool = False,
    ):
        super().__init__(topology, binding, reliable=reliable, wire_format=wire_format)
        self.stored = stored
        self.is_querier = is_querier
        self.expected_responses = expected_responses
        self.response_size_of = response_size_of
        self.collected = collected
        self.counters = counters

    def _deliver(self, envelope: TransportEnvelope) -> None:
        kind, body = envelope.inner
        if kind == QUERY_REQUEST:
            if self.stored is None:
                self.counters["misdirected"] += 1
                return
            # originate() (rather than hand-built envelopes) so the reply
            # gets a uid and rides the reliable transport when enabled
            self.originate(
                body,  # the querier's cell rides in the request
                (QUERY_RESPONSE, self.stored),
                size_units=self.response_size_of(self.stored),
            )
        elif kind == QUERY_RESPONSE:
            if not self.is_querier:
                self.counters["misdirected"] += 1
                return
            self.collected.append(body)
            self.counters["responses"] += 1

    def _drop(self, envelope: TransportEnvelope, reason: str) -> None:
        super()._drop(envelope, reason)
        self.counters["dropped"] += 1


def run_deployed_query(
    stack: DeployedStack,
    storage: Dict[GridCoord, Any],
    query_cell: GridCoord,
    reduce_fn: Callable[[List[Any]], Any],
    request_size: float = 1.0,
    response_size_of: Optional[Callable[[Any], float]] = None,
    loss_rate: float = 0.0,
    rng: "np.random.Generator | int | None" = None,
    reliable: bool = False,
    wire_format: bool = False,
) -> DeployedQueryResult:
    """Execute one query round on the deployed stack.

    Parameters
    ----------
    stack:
        A deployed stack (protocols converged).
    storage:
        ``cell -> stored payload`` at the storage leaders (typically the
        ``exfiltrated`` map of a partial-reduction application round).
    query_cell:
        Where the query is injected; its bound leader acts as querier.
    reduce_fn:
        Combines the collected responses (including the querier's own
        stored payload, if it is itself a storage cell) into the answer.
    request_size / response_size_of:
        Data units of requests and responses (default 1 unit each).
    """
    if query_cell not in stack.binding.leaders:
        raise ValueError(f"query cell {query_cell} has no bound leader")
    sizes = response_size_of or (lambda payload: 1.0)
    network = stack.network
    sim = Simulator()
    medium = WirelessMedium(
        sim, network, cost_model=stack.cost_model, loss_rate=loss_rate, rng=rng
    )
    host = ProcessHost(sim, medium)
    collected: List[Any] = []
    counters = {"responses": 0, "dropped": 0, "misdirected": 0}

    remote_cells = [c for c in storage if c != query_cell]
    querier_proc: Optional[_QueryProcess] = None
    for nid in network.alive_ids():
        cell = network.cell_of(nid)
        is_bound_leader = stack.binding.leaders.get(cell) == nid
        proc = _QueryProcess(
            stack.topology,
            stack.binding,
            stored=storage.get(cell) if is_bound_leader else None,
            is_querier=is_bound_leader and cell == query_cell,
            expected_responses=len(remote_cells),
            response_size_of=sizes,
            collected=collected,
            counters=counters,
            reliable=reliable,
            wire_format=wire_format,
        )
        host.add(nid, proc)
        if proc.is_querier:
            querier_proc = proc
    assert querier_proc is not None

    # the querier's own stored payload (if any) needs no radio round trip
    if query_cell in storage:
        collected.append(storage[query_cell])

    def inject() -> None:
        for cell in remote_cells:
            querier_proc.originate(
                cell, (QUERY_REQUEST, query_cell), size_units=request_size
            )

    sim.schedule(0.0, inject)
    sim.run_until_quiet()

    return DeployedQueryResult(
        value=reduce_fn(collected),
        responses=counters["responses"],
        latency=sim.now,
        energy=medium.ledger.total,
        transmissions=medium.stats.transmissions,
        drops=counters["dropped"],
    )
