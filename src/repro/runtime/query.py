"""Query execution over the deployed network (Section 3.1's decoupling).

The design-time query costs live in ``repro.apps.queries``; this module
runs the same request/response pattern over the *physical* stack: a
querier (the bound leader of an arbitrary query cell) unicasts a request
through the emulated grid to every storage leader, each replies with its
stored payload, and the querier reduces the responses.  The measured
radio cost of querying is then directly comparable with the gathering
round that populated the storage — the paper's claim that *"processing
and responding to queries could be in most cases decoupled from the
actual data gathering"*.

Since the serving engine landed, :func:`run_deployed_query` is a thin
one-shot wrapper over :class:`~repro.serve.engine.QueryEngine`: it
builds an engine with caching disabled, serves a single batch of one
query, and tears everything down.  Long-lived multi-query serving —
admission batching, epoch-cached aggregates, fault interaction — lives
in :mod:`repro.serve`.

Two historical bugs are fixed by the engine-backed implementation:

* the result now reports ``complete`` / ``missing_cells`` — under loss
  the reducer used to run over whatever happened to arrive, with no way
  to tell a partial answer from a full one;
* the ``misdirected`` counter (protocol routing errors) used to be
  tracked internally but dropped on the floor; it is now part of the
  result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..core.coords import GridCoord
from .stack import DeployedStack

#: Inner-payload tags used by the query protocol (defined in
#: :mod:`repro.serve.engine`; mirrored here for back-compat).
QUERY_REQUEST = "qreq"
QUERY_RESPONSE = "qresp"


@dataclass
class DeployedQueryResult:
    """Outcome of one query round over the physical stack.

    ``complete`` is ``True`` iff every storage cell answered (or was
    served locally); otherwise ``missing_cells`` lists exactly which
    cells the answer is missing, so a lossy partial answer is never
    mistaken for a full one.  ``misdirected`` counts protocol routing
    errors (a request or response delivered to a node that could not
    consume it).
    """

    value: Any
    responses: int
    latency: float
    energy: float
    transmissions: int
    drops: int
    complete: bool = True
    missing_cells: List[GridCoord] = field(default_factory=list)
    misdirected: int = 0


def run_deployed_query(
    stack: DeployedStack,
    storage: Dict[GridCoord, Any],
    query_cell: GridCoord,
    reduce_fn: Callable[[List[Any]], Any],
    request_size: float = 1.0,
    response_size_of: Optional[Callable[[Any], float]] = None,
    loss_rate: float = 0.0,
    rng: "np.random.Generator | int | None" = None,
    reliable: bool = False,
    wire_format: bool = False,
) -> DeployedQueryResult:
    """Execute one query round on the deployed stack.

    Parameters
    ----------
    stack:
        A deployed stack (protocols converged).
    storage:
        ``cell -> stored payload`` at the storage leaders (typically the
        ``exfiltrated`` map of a partial-reduction application round).
    query_cell:
        Where the query is injected; its bound leader acts as querier.
    reduce_fn:
        Combines the collected responses (including the querier's own
        stored payload, if it is itself a storage cell) into the answer.
        Payloads are reduced in sorted-cell order.
    request_size / response_size_of:
        Data units of requests and responses (default 1 unit each).
    """
    # imported here: repro.serve builds on the runtime package, so a
    # module-level import would be circular
    from ..serve.engine import QueryEngine, ServeConfig

    if query_cell not in stack.binding.leaders:
        raise ValueError(f"query cell {query_cell} has no bound leader")
    engine = QueryEngine(
        stack,
        storage=storage,
        config=ServeConfig(
            loss_rate=loss_rate,
            rng=rng,
            reliable=reliable,
            wire_format=wire_format,
            cache=False,  # one-shot: nothing to keep warm
            request_size=request_size,
            response_size_of=response_size_of,
        ),
    )
    outcome = engine.query(query_cell, reduce_fn=reduce_fn)
    return DeployedQueryResult(
        value=outcome.value,
        responses=outcome.responses,
        latency=engine.sim.now,
        energy=engine.medium.ledger.total,
        transmissions=engine.medium.stats.transmissions,
        drops=engine.stats.drops,
        complete=outcome.complete,
        missing_cells=outcome.missing_cells,
        misdirected=outcome.misdirected,
    )
