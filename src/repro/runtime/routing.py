"""Message transport over the emulated grid.

The user of the virtual architecture addresses *cells* (virtual nodes);
this layer realizes cell-to-cell delivery on the physical network using
the products of the two Section 5 protocols:

* **inter-cell**: XY (dimension-ordered) routing over cells — *"the user
  can choose any routing protocol implemented on the oriented grid using
  the routing table to forward messages between adjacent cells"* — where
  each cell crossing follows the topology-emulation ``RT`` pointers
  (possibly multi-hop within the cell to reach a gateway);
* **intra-cell**: delivery to the cell's bound process (leader) along the
  ``toward_leader`` gradient built during the election.

:class:`TransportProcess` is the per-node forwarding engine; the deployed
application stack subclasses it to hand delivered payloads to the
synthesized rule program.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.coords import Direction, GridCoord
from ..simulator.network import Packet
from ..simulator.process import Process
from .binding import Binding
from .topology_emulation import EmulatedTopology

#: Packet kind used by the transport layer.
TRANSPORT_KIND = "transport"

#: Packet kind of hop-by-hop acknowledgements (reliable mode).
ACK_KIND = "transport-ack"


@dataclass
class TransportEnvelope:
    """A cell-addressed message in flight.

    ``hops`` counts physical transmissions so far (diagnostics); ``inner``
    is the application payload delivered to the destination cell's bound
    process.  ``uid`` identifies the envelope end to end in reliable mode
    (origin node id, origin-local sequence number).
    """

    src_cell: GridCoord
    dst_cell: GridCoord
    inner: Any
    size_units: float = 1.0
    hops: int = 0
    uid: Optional[Tuple[int, int]] = None


def next_direction(src_cell: GridCoord, dst_cell: GridCoord) -> Direction:
    """XY routing decision: first fix x (east/west), then y (north/south)."""
    if src_cell == dst_cell:
        raise ValueError("already at destination cell")
    if dst_cell[0] > src_cell[0]:
        return Direction.EAST
    if dst_cell[0] < src_cell[0]:
        return Direction.WEST
    if dst_cell[1] > src_cell[1]:
        return Direction.SOUTH
    return Direction.NORTH


class TransportProcess(Process):
    """Per-node store-and-forward engine over the emulated topology.

    Parameters
    ----------
    topology:
        Converged routing tables (shared across processes).
    binding:
        Converged leader binding (shared).
    on_deliver:
        Called as ``on_deliver(self, envelope)`` when an envelope reaches
        the bound leader of its destination cell.
    on_drop:
        Called on forwarding failure (missing table entry / dead next
        hop); default counts into :attr:`drops`.
    reliable:
        Enable hop-by-hop ARQ: every forward expects an acknowledgement
        from the next hop and is retransmitted up to ``max_retries``
        times after ``ack_timeout`` time units.  Duplicates created by
        lost acknowledgements are suppressed by envelope ``uid``.  This is
        the natural hardening of the Section 4.3 observation that
        *"some messages might even be dropped"* — the synthesized program
        stays oblivious.
    dedup_window:
        Per-origin out-of-order tolerance of the duplicate-suppression
        state.  Instead of remembering every uid ever seen (unbounded
        memory over long maintenance/churn runs), each origin keeps a
        high-water mark plus the set of seen sequence numbers within
        ``dedup_window`` below it; anything older is treated as seen.
        Origins emit sequence numbers monotonically, so a *new* uid can
        only be mistaken for old if it is displaced by more than the
        window — far beyond any ARQ reordering the simulator produces.
    wire_format:
        Encode every hop through the compact binary codec of
        :mod:`repro.runtime.wire`: envelopes (and, in reliable mode,
        acknowledgements) travel the medium as ``bytes`` frames and the
        receive path decodes them back.  Observable behaviour — stats,
        energy, delivery order, fingerprints — is identical to object
        passing; this mode exists so every simulated hop exercises the
        codec the cross-process backends will need, under the full
        loss/jitter/retransmit/dedup machinery.
    """

    def __init__(
        self,
        topology: EmulatedTopology,
        binding: Binding,
        on_deliver: Optional[Callable[["TransportProcess", TransportEnvelope], None]] = None,
        on_drop: Optional[Callable[["TransportProcess", TransportEnvelope, str], None]] = None,
        reliable: bool = False,
        max_retries: int = 3,
        ack_timeout: float = 4.0,
        ack_size_units: float = 1.0,
        dedup_window: int = 128,
        wire_format: bool = False,
    ):
        super().__init__()
        if dedup_window < 1:
            raise ValueError(f"dedup_window must be >= 1, got {dedup_window}")
        self.topology = topology
        self.binding = binding
        self.on_deliver = on_deliver
        self.on_drop = on_drop
        self.reliable = reliable
        self.max_retries = max_retries
        self.ack_timeout = ack_timeout
        self.ack_size_units = ack_size_units
        self.dedup_window = dedup_window
        self.wire_format = wire_format
        if wire_format:
            from . import wire  # deferred: wire imports TransportEnvelope

            self._wire = wire
        self.drops = 0
        self.forwarded = 0
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self._seq = 0
        # uid -> (envelope, next hop, attempts, hops snapshot at send time);
        # the ack timer of each pending uid is the tag-indexed process
        # timer keyed by the uid itself
        self._pending: Dict[Tuple[int, int], Tuple[TransportEnvelope, int, int, int]] = {}
        # per-origin dedup: highest seq seen + seen seqs within the window
        self._seen_high: Dict[int, int] = {}
        self._seen_recent: Dict[int, Set[int]] = {}

    # -- API used by the application layer ---------------------------------------

    def originate(self, dst_cell: GridCoord, inner: Any, size_units: float = 1.0) -> None:
        """Inject a new envelope at this node."""
        uid = None
        if self.reliable:
            uid = (self.node_id, self._seq)
            self._seq += 1
        envelope = TransportEnvelope(
            src_cell=self.my_cell, dst_cell=dst_cell, inner=inner,
            size_units=size_units, uid=uid,
        )
        self._route(envelope)

    @property
    def my_cell(self) -> GridCoord:
        """The cell this node lies in."""
        return self.medium.network.cell_of(self.node_id)

    def transport_stats(self) -> Dict[str, int]:
        """Forwarding counters, including duplicate suppressions."""
        return {
            "forwarded": self.forwarded,
            "drops": self.drops,
            "retransmissions": self.retransmissions,
            "duplicates_suppressed": self.duplicates_suppressed,
        }

    # -- duplicate suppression ----------------------------------------------------

    def _uid_seen(self, origin: int, seq: int) -> bool:
        high = self._seen_high.get(origin, -1)
        if seq > high:
            return False
        if seq <= high - self.dedup_window:
            return True  # older than the window: assumed already seen
        return seq in self._seen_recent.get(origin, ())

    def _uid_mark(self, origin: int, seq: int) -> None:
        recent = self._seen_recent.setdefault(origin, set())
        high = self._seen_high.get(origin, -1)
        if seq > high:
            self._seen_high[origin] = seq
            floor = seq - self.dedup_window
            if recent:
                recent.difference_update([s for s in recent if s <= floor])
        recent.add(seq)

    # -- forwarding ----------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        if packet.kind == ACK_KIND:
            uid = packet.payload
            if self.wire_format and isinstance(uid, (bytes, bytearray, memoryview)):
                uid = self._wire.decode_ack(uid)
            self._on_ack(uid)
            return
        if packet.kind != TRANSPORT_KIND:
            return
        envelope: TransportEnvelope = packet.payload
        if self.wire_format and isinstance(envelope, (bytes, bytearray, memoryview)):
            envelope = self._wire.decode_envelope(envelope)
        if self.reliable and envelope.uid is not None:
            # acknowledge receipt to the previous hop (even duplicates:
            # the original ack may have been the lost packet)
            ack = (
                self._wire.encode_ack(envelope.uid)
                if self.wire_format
                else envelope.uid
            )
            self.unicast(packet.src, ACK_KIND, ack, self.ack_size_units)
            origin, seq = envelope.uid
            if self._uid_seen(origin, seq):
                self.duplicates_suppressed += 1
                return
            self._uid_mark(origin, seq)
        self._route(envelope)

    def _on_ack(self, uid: Tuple[int, int]) -> None:
        self._pending.pop(uid, None)
        self.cancel_timer(uid)

    def on_timer(self, tag: Any) -> None:
        if not (isinstance(tag, tuple) and len(tag) == 2):
            return
        entry = self._pending.get(tag)
        if entry is None:
            return
        envelope, nxt, attempts, hops_at_send = entry
        if attempts >= self.max_retries:
            del self._pending[tag]
            self._drop(envelope, f"no ack from {nxt} after {attempts} retries")
            return
        self.retransmissions += 1
        self._pending[tag] = (envelope, nxt, attempts + 1, hops_at_send)
        # retransmit a snapshot, not the live envelope: downstream hops may
        # have incremented ``hops`` on the shared object since the first
        # attempt, and re-sending it would carry the inflated count
        clone = replace(envelope, hops=hops_at_send)
        self._tx_envelope(nxt, clone)
        self.set_timer(self.ack_timeout, tag)

    def _route(self, envelope: TransportEnvelope) -> None:
        cell = self.my_cell
        if cell == envelope.dst_cell:
            if self.binding.is_leader(self.node_id):
                self._deliver(envelope)
                return
            nxt = self.binding.toward_leader.get(self.node_id)
            if nxt is None:
                self._drop(envelope, "no gradient pointer toward leader")
                return
            self._forward(envelope, nxt)
            return
        direction = next_direction(cell, envelope.dst_cell)
        nxt = self.topology.entry(self.node_id, direction)
        if nxt is None:
            self._drop(envelope, f"no routing entry {direction.name}")
            return
        self._forward(envelope, nxt)

    def _tx_envelope(self, nxt: int, envelope: TransportEnvelope) -> None:
        """One physical transmission of ``envelope`` (encoding if wired)."""
        payload: Any = (
            self._wire.encode_envelope(envelope) if self.wire_format else envelope
        )
        self.unicast(nxt, TRANSPORT_KIND, payload, envelope.size_units)

    def _forward(self, envelope: TransportEnvelope, nxt: int) -> None:
        if not self.medium.network.node(nxt).alive:
            self._drop(envelope, f"next hop {nxt} dead")
            return
        envelope.hops += 1
        self.forwarded += 1
        self._tx_envelope(nxt, envelope)
        if self.reliable and envelope.uid is not None:
            # snapshot hops as transmitted: retransmissions resend this value
            self._pending[envelope.uid] = (envelope, nxt, 0, envelope.hops)
            self.set_timer(self.ack_timeout, envelope.uid)

    def _deliver(self, envelope: TransportEnvelope) -> None:
        if self.on_deliver is not None:
            self.on_deliver(self, envelope)

    def _drop(self, envelope: TransportEnvelope, reason: str) -> None:
        self.drops += 1
        if self.on_drop is not None:
            self.on_drop(self, envelope, reason)


def trace_route(
    topology: EmulatedTopology,
    binding: Binding,
    src_cell: GridCoord,
    dst_cell: GridCoord,
) -> List[int]:
    """Offline computation of the physical node path an envelope takes from
    the leader of ``src_cell`` to the leader of ``dst_cell``.

    Mirrors :class:`TransportProcess` exactly (XY over cells, gateway
    chains, leader gradient); used in tests and for hop-count analytics
    without running the simulator.
    """
    net = topology.network
    current = binding.leader_of(src_cell)
    path = [current]
    guard = 0
    limit = 4 * len(net.nodes) + 16
    while True:
        guard += 1
        if guard > limit:
            raise RuntimeError("route did not converge (cycle suspected)")
        cell = net.cell_of(current)
        if cell == dst_cell:
            if binding.is_leader(current):
                return path
            nxt = binding.toward_leader.get(current)
            if nxt is None:
                raise RuntimeError(f"node {current}: no gradient pointer")
        else:
            direction = next_direction(cell, dst_cell)
            nxt = topology.entry(current, direction)
            if nxt is None:
                raise RuntimeError(
                    f"node {current}: no routing entry {direction.name}"
                )
        path.append(nxt)
        current = nxt
