"""Message transport over the emulated grid.

The user of the virtual architecture addresses *cells* (virtual nodes);
this layer realizes cell-to-cell delivery on the physical network using
the products of the two Section 5 protocols:

* **inter-cell**: XY (dimension-ordered) routing over cells — *"the user
  can choose any routing protocol implemented on the oriented grid using
  the routing table to forward messages between adjacent cells"* — where
  each cell crossing follows the topology-emulation ``RT`` pointers
  (possibly multi-hop within the cell to reach a gateway);
* **intra-cell**: delivery to the cell's bound process (leader) along the
  ``toward_leader`` gradient built during the election.

:class:`TransportProcess` is the per-node forwarding engine; the deployed
application stack subclasses it to hand delivered payloads to the
synthesized rule program.

With a :class:`~repro.runtime.faults.HealingConfig` the engine is
additionally *self-healing* (DESIGN.md §10): leaders emit periodic
heartbeats, members suspect a silent leader after a miss-threshold window
and fail over to the deterministic successor (the ``(metric, id)``-argmin
of the surviving cell members), routing tables and leader gradients are
repaired on demand around dead nodes, and reliable-mode retransmissions
re-resolve their next hop so in-flight envelopes are redirected instead
of dying with the original route.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, List, Optional, Set, Tuple

from ..core.coords import Direction, GridCoord
from ..simulator.network import Packet
from ..simulator.process import Process
from .binding import Binding
from .topology_emulation import EmulatedTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults imports us)
    from .faults import FaultReport, HealingConfig

#: Packet kind used by the transport layer.
TRANSPORT_KIND = "transport"

#: Packet kind of hop-by-hop acknowledgements (reliable mode).
ACK_KIND = "transport-ack"

#: Packet kind of leader heartbeats (self-healing mode).
HEARTBEAT_KIND = "transport-hb"

#: Packet kind of the takeover flood a failover successor emits.
TAKEOVER_KIND = "transport-takeover"

#: Timer tags of the healing machinery (uid retry timers are 2-tuples).
_HB_TIMER = "hb"
_WATCH_TIMER = "hb-watch"


class CorruptedFrame:
    """A transport frame mangled in flight (object-passing mode).

    The fault injector wraps a packet payload in this sentinel when the
    medium carries Python objects instead of wire bytes, so corruption
    behaves identically with ``wire_format`` on (byte flip, CRC rejects)
    and off (wrapper, receiver rejects): either way the receiver counts
    the frame in :attr:`TransportProcess.rejected_frames` and drops it.
    """

    __slots__ = ("original",)

    def __init__(self, original: Any):
        self.original = original

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorruptedFrame({self.original!r})"


def _stable_unit(*parts: int) -> float:
    """Deterministic hash of integers to ``[0, 1)`` (splitmix64-style).

    Retry jitter must be seeded yet must not consume draws from the shared
    medium RNG (that would perturb the loss/jitter stream of every other
    transmission), so it is derived purely from ``(node, uid, attempt)``.
    """
    mask = (1 << 64) - 1
    x = 0x9E3779B97F4A7C15
    for p in parts:
        x = (x ^ (p & mask)) & mask
        x = (x * 0xBF58476D1CE4E5B9) & mask
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & mask
        x ^= x >> 31
    return (x >> 11) / float(1 << 53)


@dataclass
class TransportEnvelope:
    """A cell-addressed message in flight.

    ``hops`` counts physical transmissions so far (diagnostics); ``inner``
    is the application payload delivered to the destination cell's bound
    process.  ``uid`` identifies the envelope end to end in reliable mode
    (origin node id, origin-local sequence number).
    """

    src_cell: GridCoord
    dst_cell: GridCoord
    inner: Any
    size_units: float = 1.0
    hops: int = 0
    uid: Optional[Tuple[int, int]] = None


def next_direction(src_cell: GridCoord, dst_cell: GridCoord) -> Direction:
    """XY routing decision: first fix x (east/west), then y (north/south)."""
    if src_cell == dst_cell:
        raise ValueError("already at destination cell")
    if dst_cell[0] > src_cell[0]:
        return Direction.EAST
    if dst_cell[0] < src_cell[0]:
        return Direction.WEST
    if dst_cell[1] > src_cell[1]:
        return Direction.SOUTH
    return Direction.NORTH


class TransportProcess(Process):
    """Per-node store-and-forward engine over the emulated topology.

    Parameters
    ----------
    topology:
        Converged routing tables (shared across processes).
    binding:
        Converged leader binding (shared).
    on_deliver:
        Called as ``on_deliver(self, envelope)`` when an envelope reaches
        the bound leader of its destination cell.
    on_drop:
        Called on forwarding failure (missing table entry / dead next
        hop); default counts into :attr:`drops`.
    reliable:
        Enable hop-by-hop ARQ: every forward expects an acknowledgement
        from the next hop and is retransmitted up to ``max_retries``
        times.  Duplicates created by lost acknowledgements are suppressed
        by envelope ``uid``.  This is the natural hardening of the
        Section 4.3 observation that *"some messages might even be
        dropped"* — the synthesized program stays oblivious.
    ack_timeout:
        Base retry interval.  The wait before retry ``k`` is
        ``ack_timeout * backoff_factor**k``, capped at ``backoff_max``
        and stretched by up to ``backoff_jitter`` of itself using a
        deterministic hash of ``(node, uid, attempt)`` — seeded
        exponential backoff that never touches the medium RNG stream.
        ``backoff_factor=1.0`` with ``backoff_jitter=0.0`` recovers the
        legacy fixed interval.
    dedup_window:
        Out-of-order tolerance of the duplicate-suppression state, per
        origin (and, on the forwarding path, per previous hop so a
        post-failover reroute through an old relay is not mistaken for an
        ARQ echo).  Instead of remembering every uid ever seen (unbounded
        memory over long maintenance/churn runs), each key keeps a
        high-water mark plus the set of seen sequence numbers within
        ``dedup_window`` below it; anything older is treated as seen.
        Origins emit sequence numbers monotonically, so a *new* uid can
        only be mistaken for old if it is displaced by more than the
        window — far beyond any ARQ reordering the simulator produces.
    wire_format:
        Encode every hop through the compact binary codec of
        :mod:`repro.runtime.wire`: envelopes (and, in reliable mode,
        acknowledgements) travel the medium as ``bytes`` frames and the
        receive path decodes them back.  Observable behaviour — stats,
        energy, delivery order, fingerprints — is identical to object
        passing.  Undecodable frames (corruption, truncation) are counted
        in :attr:`rejected_frames` and dropped; in reliable mode the
        upstream hop never sees an acknowledgement and retransmits.
    healing:
        A :class:`~repro.runtime.faults.HealingConfig` enables the
        self-healing machinery (heartbeats, failover, route repair,
        retransmission redirection).  ``None`` (default) keeps the
        engine's behaviour byte-identical to the pre-fault-model code on
        fault-free runs.
    fault_report:
        Shared :class:`~repro.runtime.faults.FaultReport` receiving the
        observability counters (detections, failovers, reroutes,
        redirects, rejected frames).
    """

    def __init__(
        self,
        topology: EmulatedTopology,
        binding: Binding,
        on_deliver: Optional[Callable[["TransportProcess", TransportEnvelope], None]] = None,
        on_drop: Optional[Callable[["TransportProcess", TransportEnvelope, str], None]] = None,
        reliable: bool = False,
        max_retries: int = 3,
        ack_timeout: float = 4.0,
        ack_size_units: float = 1.0,
        dedup_window: int = 128,
        wire_format: bool = False,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.5,
        backoff_max: Optional[float] = None,
        healing: "Optional[HealingConfig]" = None,
        fault_report: "Optional[FaultReport]" = None,
    ):
        super().__init__()
        if dedup_window < 1:
            raise ValueError(f"dedup_window must be >= 1, got {dedup_window}")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1.0, got {backoff_factor}")
        if backoff_jitter < 0.0:
            raise ValueError(f"backoff_jitter must be >= 0, got {backoff_jitter}")
        self.topology = topology
        self.binding = binding
        self.on_deliver = on_deliver
        self.on_drop = on_drop
        self.reliable = reliable
        self.max_retries = max_retries
        self.ack_timeout = ack_timeout
        self.ack_size_units = ack_size_units
        self.dedup_window = dedup_window
        self.wire_format = wire_format
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.backoff_max = (
            backoff_max if backoff_max is not None else 8.0 * ack_timeout
        )
        self.healing = healing
        self.fault_report = fault_report
        if wire_format:
            from . import wire  # deferred: wire imports TransportEnvelope

            self._wire = wire
        self.drops = 0
        self.forwarded = 0
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.rejected_frames = 0
        self._seq = 0
        # uid -> (envelope, next hop, attempts, hops snapshot at send time);
        # next hop -1 means "deferred, never transmitted" (healing mode).
        # The ack timer of each pending uid is the tag-indexed process
        # timer keyed by the uid itself
        self._pending: Dict[Tuple[int, int], Tuple[TransportEnvelope, int, int, int]] = {}
        # forwarding dedup: highest seq seen + seen seqs within the window,
        # keyed by (origin, previous hop) so ARQ echoes are suppressed
        # while a rerouted envelope arriving from a new relay is not
        self._seen_high: Dict[Hashable, int] = {}
        self._seen_recent: Dict[Hashable, Set[int]] = {}
        # delivery dedup (at the destination leader): keyed by origin only,
        # enforcing at-most-once delivery regardless of the path taken
        self._dlv_high: Dict[Hashable, int] = {}
        self._dlv_recent: Dict[Hashable, Set[int]] = {}
        # healing state
        self._last_hb = 0.0
        self._takeover_seen: Set[Tuple[GridCoord, int]] = set()

    # -- API used by the application layer ---------------------------------------

    def originate(self, dst_cell: GridCoord, inner: Any, size_units: float = 1.0) -> None:
        """Inject a new envelope at this node."""
        uid = None
        if self.reliable:
            uid = (self.node_id, self._seq)
            self._seq += 1
        envelope = TransportEnvelope(
            src_cell=self.my_cell, dst_cell=dst_cell, inner=inner,
            size_units=size_units, uid=uid,
        )
        self._route(envelope)

    @property
    def my_cell(self) -> GridCoord:
        """The cell this node lies in."""
        return self.medium.network.cell_of(self.node_id)

    def transport_stats(self) -> Dict[str, int]:
        """Forwarding counters, including duplicate suppressions."""
        return {
            "forwarded": self.forwarded,
            "drops": self.drops,
            "retransmissions": self.retransmissions,
            "duplicates_suppressed": self.duplicates_suppressed,
            "rejected_frames": self.rejected_frames,
        }

    # -- lifecycle -----------------------------------------------------------------

    def on_start(self) -> None:
        if self.healing is not None:
            self._last_hb = self.now
            if self.binding.is_leader(self.node_id):
                self.set_timer(self.healing.heartbeat_interval, _HB_TIMER)
            else:
                self.set_timer(self._watch_window(), _WATCH_TIMER)

    def on_become_leader(self) -> None:
        """Hook: this node just took over as its cell's leader (failover).

        Subclasses hosting application programs adopt the cell's rule
        program state-fresh here.
        """

    # -- duplicate suppression ----------------------------------------------------

    @staticmethod
    def _window_seen(
        high: Dict[Hashable, int],
        recent: Dict[Hashable, Set[int]],
        window: int,
        key: Hashable,
        seq: int,
    ) -> bool:
        top = high.get(key, -1)
        if seq > top:
            return False
        if seq <= top - window:
            return True  # older than the window: assumed already seen
        return seq in recent.get(key, ())

    @staticmethod
    def _window_mark(
        high: Dict[Hashable, int],
        recent: Dict[Hashable, Set[int]],
        window: int,
        key: Hashable,
        seq: int,
    ) -> None:
        seen = recent.setdefault(key, set())
        top = high.get(key, -1)
        if seq > top:
            high[key] = seq
            floor = seq - window
            if seen:
                seen.difference_update([s for s in seen if s <= floor])
        seen.add(seq)

    def _uid_seen(self, origin: Hashable, seq: int) -> bool:
        return self._window_seen(
            self._seen_high, self._seen_recent, self.dedup_window, origin, seq
        )

    def _uid_mark(self, origin: Hashable, seq: int) -> None:
        self._window_mark(
            self._seen_high, self._seen_recent, self.dedup_window, origin, seq
        )

    # -- forwarding ----------------------------------------------------------------

    def _reject_frame(self) -> None:
        self.rejected_frames += 1
        if self.fault_report is not None:
            self.fault_report.frames_rejected += 1

    def on_packet(self, packet: Packet) -> None:
        if isinstance(packet.payload, CorruptedFrame):
            # object-passing analogue of an undecodable wire frame
            self._reject_frame()
            return
        if packet.kind == ACK_KIND:
            uid = packet.payload
            if self.wire_format and isinstance(uid, (bytes, bytearray, memoryview)):
                try:
                    uid = self._wire.decode_ack(uid)
                except self._wire.WireDecodeError:
                    self._reject_frame()
                    return
            self._on_ack(uid)
            return
        if packet.kind == HEARTBEAT_KIND:
            self._on_heartbeat(packet)
            return
        if packet.kind == TAKEOVER_KIND:
            self._on_takeover(packet)
            return
        if packet.kind != TRANSPORT_KIND:
            return
        envelope: TransportEnvelope = packet.payload
        if self.wire_format and isinstance(envelope, (bytes, bytearray, memoryview)):
            try:
                envelope = self._wire.decode_envelope(envelope)
            except self._wire.WireDecodeError:
                # corrupted/truncated frame: count and drop, never crash
                # the simulation; the upstream ARQ (if any) retransmits
                self._reject_frame()
                return
        if self.reliable and envelope.uid is not None:
            # acknowledge receipt to the previous hop (even duplicates:
            # the original ack may have been the lost packet)
            ack = (
                self._wire.encode_ack(envelope.uid)
                if self.wire_format
                else envelope.uid
            )
            self.unicast(packet.src, ACK_KIND, ack, self.ack_size_units)
            origin, seq = envelope.uid
            if self._uid_seen((origin, packet.src), seq):
                self.duplicates_suppressed += 1
                return
            self._uid_mark((origin, packet.src), seq)
        self._route(envelope)

    def _on_ack(self, uid: Tuple[int, int]) -> None:
        self._pending.pop(uid, None)
        self.cancel_timer(uid)

    def _retry_delay(self, uid: Tuple[int, int], attempt: int) -> float:
        """Wait before retry ``attempt`` of ``uid`` (seeded backoff)."""
        delay = self.ack_timeout * (self.backoff_factor ** attempt)
        if delay > self.backoff_max:
            delay = self.backoff_max
        if self.backoff_jitter > 0.0:
            u = _stable_unit(self.node_id, uid[0], uid[1], attempt)
            delay *= 1.0 + self.backoff_jitter * u
        return delay

    def on_timer(self, tag: Any) -> None:
        if tag == _HB_TIMER:
            self._heartbeat_tick()
            return
        if tag == _WATCH_TIMER:
            self._watch_tick()
            return
        if not (isinstance(tag, tuple) and len(tag) == 2):
            return
        entry = self._pending.get(tag)
        if entry is None:
            return
        envelope, nxt, attempts, hops_at_send = entry
        if attempts >= self.max_retries:
            del self._pending[tag]
            self._drop(envelope, f"no ack from {nxt} after {attempts} retries")
            return
        if self.healing is not None:
            if (
                self.my_cell == envelope.dst_cell
                and self.binding.is_leader(self.node_id)
            ):
                # this node became the leader while the envelope waited
                del self._pending[tag]
                self._deliver_once(envelope)
                return
            new_nxt, _reason = self._resolve_next_hop(envelope)
            if new_nxt is None:
                # still unroutable (failover/repair not done yet): burn an
                # attempt and back off without transmitting
                self._pending[tag] = (envelope, nxt, attempts + 1, hops_at_send)
                self.set_timer(self._retry_delay(tag, attempts + 1), tag)
                return
            if nxt >= 0 and new_nxt != nxt and self.fault_report is not None:
                self.fault_report.redirected_retransmissions += 1
            nxt = new_nxt
        self.retransmissions += 1
        self._pending[tag] = (envelope, nxt, attempts + 1, hops_at_send)
        # retransmit a snapshot, not the live envelope: downstream hops may
        # have incremented ``hops`` on the shared object since the first
        # attempt, and re-sending it would carry the inflated count
        clone = replace(envelope, hops=hops_at_send)
        self._tx_envelope(nxt, clone)
        self.set_timer(self._retry_delay(tag, attempts + 1), tag)

    def _resolve_next_hop(
        self, envelope: TransportEnvelope
    ) -> Tuple[Optional[int], str]:
        """The current next hop for ``envelope``, repairing routes on
        demand (healing mode) when the recorded hop is dead or missing."""
        net = self.medium.network
        cell = self.my_cell
        if cell == envelope.dst_cell:
            nxt = self.binding.toward_leader.get(self.node_id)
            if self.healing is not None and (
                nxt is None
                or not net.node(nxt).alive
                or nxt not in net.neighbor_set(self.node_id)
            ):
                # dead, or moved out of radio range (mobility): repair
                if self.binding.repair_gradient(cell) and self.fault_report is not None:
                    self.fault_report.reroutes += 1
                nxt = self.binding.toward_leader.get(self.node_id)
            if nxt is None:
                return None, "no gradient pointer toward leader"
        else:
            direction = next_direction(cell, envelope.dst_cell)
            nxt = self.topology.entry(self.node_id, direction)
            if self.healing is not None and (
                nxt is None
                or not net.node(nxt).alive
                or nxt not in net.neighbor_set(self.node_id)
            ):
                if self.topology.repair(cell, direction) and self.fault_report is not None:
                    self.fault_report.reroutes += 1
                nxt = self.topology.entry(self.node_id, direction)
            if nxt is None:
                return None, f"no routing entry {direction.name}"
        if not net.node(nxt).alive:
            return None, f"next hop {nxt} dead"
        if nxt not in net.neighbor_set(self.node_id):
            return None, f"next hop {nxt} out of range"
        return nxt, ""

    def _route(self, envelope: TransportEnvelope) -> None:
        if (
            self.my_cell == envelope.dst_cell
            and self.binding.is_leader(self.node_id)
        ):
            self._deliver_once(envelope)
            return
        nxt, reason = self._resolve_next_hop(envelope)
        if nxt is None:
            self._unroutable(envelope, reason)
            return
        self._forward(envelope, nxt)

    def _unroutable(self, envelope: TransportEnvelope, reason: str) -> None:
        if (
            self.healing is not None
            and self.reliable
            and envelope.uid is not None
        ):
            # hold custody: a failover or repair may open a route shortly
            self._defer(envelope, reason)
        else:
            self._drop(envelope, reason)

    def _defer(self, envelope: TransportEnvelope, reason: str) -> None:
        uid = envelope.uid
        assert uid is not None
        entry = self._pending.get(uid)
        attempts = entry[2] if entry is not None else 0
        hops_at_send = entry[3] if entry is not None else envelope.hops + 1
        if attempts >= self.max_retries:
            self._pending.pop(uid, None)
            self._drop(envelope, reason)
            return
        self._pending[uid] = (envelope, -1, attempts + 1, hops_at_send)
        self.set_timer(self._retry_delay(uid, attempts + 1), uid)

    def _tx_envelope(self, nxt: int, envelope: TransportEnvelope) -> None:
        """One physical transmission of ``envelope`` (encoding if wired)."""
        payload: Any = (
            self._wire.encode_envelope(envelope) if self.wire_format else envelope
        )
        self.unicast(nxt, TRANSPORT_KIND, payload, envelope.size_units)

    def _forward(self, envelope: TransportEnvelope, nxt: int) -> None:
        if not self.medium.network.node(nxt).alive:
            # unreachable without healing: _resolve_next_hop pre-checks
            # liveness, so this only guards direct callers in tests
            self._unroutable(envelope, f"next hop {nxt} dead")
            return
        envelope.hops += 1
        self.forwarded += 1
        self._tx_envelope(nxt, envelope)
        if self.reliable and envelope.uid is not None:
            # snapshot hops as transmitted: retransmissions resend this value
            self._pending[envelope.uid] = (envelope, nxt, 0, envelope.hops)
            self.set_timer(self._retry_delay(envelope.uid, 0), envelope.uid)

    def _deliver_once(self, envelope: TransportEnvelope) -> None:
        """Deliver to the bound program at most once per uid.

        Path-independent: a failover can legitimately route a
        retransmission through a different relay chain, which the
        per-previous-hop forwarding dedup intentionally lets through —
        the final gate here is keyed by origin alone.
        """
        if self.reliable and envelope.uid is not None:
            origin, seq = envelope.uid
            if self._window_seen(
                self._dlv_high, self._dlv_recent, self.dedup_window, origin, seq
            ):
                self.duplicates_suppressed += 1
                return
            self._window_mark(
                self._dlv_high, self._dlv_recent, self.dedup_window, origin, seq
            )
        self._deliver(envelope)

    def _deliver(self, envelope: TransportEnvelope) -> None:
        if self.on_deliver is not None:
            self.on_deliver(self, envelope)

    def _drop(self, envelope: TransportEnvelope, reason: str) -> None:
        self.drops += 1
        if self.on_drop is not None:
            self.on_drop(self, envelope, reason)

    # -- self-healing: heartbeats, suspicion, failover ---------------------------

    def _watch_window(self) -> float:
        h = self.healing
        assert h is not None
        return h.heartbeat_interval * h.miss_threshold

    def _on_heartbeat(self, packet: Packet) -> None:
        if self.healing is None:
            return
        cell, _leader = packet.payload
        if cell == self.my_cell:
            self._last_hb = self.now

    def _heartbeat_tick(self) -> None:
        h = self.healing
        if h is None:
            return
        if not self.binding.is_leader(self.node_id):
            # deposed mid-run (or a revived ex-leader): stop claiming the
            # role and fall back to watching the actual leader
            self._last_hb = self.now
            if self.now < h.horizon:
                self.set_timer(self._watch_window(), _WATCH_TIMER)
            return
        self.broadcast(
            HEARTBEAT_KIND, (self.my_cell, self.node_id), h.heartbeat_size_units
        )
        if self.now < h.horizon:
            self.set_timer(h.heartbeat_interval, _HB_TIMER)

    def _watch_tick(self) -> None:
        h = self.healing
        if h is None:
            return
        cell = self.my_cell
        if self.binding.leaders.get(cell) == self.node_id:
            return  # became leader meanwhile; the heartbeat timer owns the role
        window = self._watch_window()
        if self.now - self._last_hb < window - 1e-9:
            # heard a heartbeat inside the window: watch out the remainder
            if self.now < h.horizon:
                remaining = self._last_hb + window - self.now
                self.set_timer(max(remaining, 1e-9), _WATCH_TIMER)
            return
        # suspicion: a full window with no heartbeat from the leader
        net = self.medium.network
        leader = self.binding.leaders.get(cell)
        if self.fault_report is not None:
            self.fault_report.detected_failures += 1
        # a leader that moved to another cell (mobility) is alive but
        # absent — the cell must fail over exactly as if it had died
        leader_alive = (
            leader is not None
            and net.node(leader).alive
            and net.cell_of(leader) == cell
        )
        members = net.members_of_cell(cell)
        successor = (
            min(members, key=lambda m: (h.metric(net, m), m)) if members else None
        )
        if successor == self.node_id and not leader_alive:
            self._become_leader(leader)
            return
        # not the successor (or a false alarm): restart the window and let
        # the deterministic successor act
        self._last_hb = self.now
        if self.now < h.horizon:
            self.set_timer(window, _WATCH_TIMER)

    def _become_leader(self, old_leader: Optional[int]) -> None:
        h = self.healing
        assert h is not None
        cell = self.my_cell
        if self.fault_report is not None:
            self.fault_report.failovers.append(
                (self.now, cell, -1 if old_leader is None else old_leader, self.node_id)
            )
        self.binding.leaders[cell] = self.node_id
        self.binding.toward_leader[self.node_id] = None
        self._takeover_seen.add((cell, self.node_id))
        self.cancel_timer(_WATCH_TIMER)
        # the takeover flood rebuilds the cell's gradient tree (first-heard
        # parents, exactly like the election flood) and doubles as the
        # first heartbeat of the new incumbency
        self.broadcast(TAKEOVER_KIND, (cell, self.node_id), h.heartbeat_size_units)
        self._last_hb = self.now
        if self.now < h.horizon:
            self.set_timer(h.heartbeat_interval, _HB_TIMER)
        self.on_become_leader()

    def _on_takeover(self, packet: Packet) -> None:
        if self.healing is None:
            return
        cell, leader = packet.payload
        if cell != self.my_cell:
            return  # boundary suppression
        key = (cell, leader)
        if key in self._takeover_seen:
            return
        self._takeover_seen.add(key)
        net = self.medium.network
        current = self.binding.leaders.get(cell)
        if (
            current is None
            or current == leader
            or not net.node(current).alive
            or net.cell_of(current) != cell
        ):
            self.binding.leaders[cell] = leader
        if leader != self.node_id:
            self.binding.toward_leader[self.node_id] = packet.src
            self.cancel_timer(_HB_TIMER)  # a deposed ex-leader stops beating
            self._last_hb = self.now
            if self.now < self.healing.horizon:
                self.set_timer(self._watch_window(), _WATCH_TIMER)
        self.broadcast(
            TAKEOVER_KIND, (cell, leader), self.healing.heartbeat_size_units
        )


def trace_route(
    topology: EmulatedTopology,
    binding: Binding,
    src_cell: GridCoord,
    dst_cell: GridCoord,
) -> List[int]:
    """Offline computation of the physical node path an envelope takes from
    the leader of ``src_cell`` to the leader of ``dst_cell``.

    Mirrors :class:`TransportProcess` exactly (XY over cells, gateway
    chains, leader gradient); used in tests and for hop-count analytics
    without running the simulator.
    """
    net = topology.network
    current = binding.leader_of(src_cell)
    path = [current]
    guard = 0
    limit = 4 * len(net.nodes) + 16
    while True:
        guard += 1
        if guard > limit:
            raise RuntimeError("route did not converge (cycle suspected)")
        cell = net.cell_of(current)
        if cell == dst_cell:
            if binding.is_leader(current):
                return path
            nxt = binding.toward_leader.get(current)
            if nxt is None:
                raise RuntimeError(f"node {current}: no gradient pointer")
        else:
            direction = next_direction(cell, dst_cell)
            nxt = topology.entry(current, direction)
            if nxt is None:
                raise RuntimeError(
                    f"node {current}: no routing entry {direction.name}"
                )
        path.append(nxt)
        current = nxt
