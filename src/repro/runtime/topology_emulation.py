"""Cell-based topology emulation protocol (Section 5.1).

Emulates the virtual grid ``G_V`` on the arbitrary deployment ``G_R``:

1. Localization and neighbour discovery are assumed done; every node
   computes its cell ``CELL(v_i)`` and knows its one-hop neighbours.
2. Each node fills its routing table ``RT: {N, S, E, W} -> node | NULL``
   with a direct neighbour lying in the adjacent cell, if any.
3. Each node broadcasts its routing table.  *"When a node v_j receives a
   message from some v_i where CELL(v_i) != CELL(v_j), the message is
   ignored"* — cross-boundary suppression, property (ii).  Otherwise, for
   every direction where ``v_i`` has an entry and ``v_j`` has NULL,
   ``v_j`` routes via ``v_i`` and rebroadcasts its updated table.

On convergence, following ``RT[d]`` pointers from any node leads (through
same-cell relays) to a node with a direct link into the adjacent cell in
direction ``d`` — the multi-hop paths of the paper.  The fill-only-NULL
rule makes the via-graph a DAG rooted at boundary nodes, so chains always
terminate; :meth:`EmulatedTopology.gateway_chain` materializes them.

The module also provides :func:`oracle_reachable_directions` — a
centralized computation of which (node, direction) pairs are satisfiable
at all — used by the tests to show the protocol achieves exactly the
possible entries, and by experiment E4 to report the efficiency properties
(i)–(iii).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from ..core.coords import ALL_DIRECTIONS, Direction, GridCoord
from ..core.cost_model import CostModel, UniformCostModel
from ..deployment.topology import RealNetwork
from ..simulator.engine import Simulator
from ..simulator.network import Packet, WirelessMedium
from ..simulator.process import Process, ProcessHost

#: Packet kind used by the protocol.
RT_KIND = "rt"


class TopologyEmulationProcess(Process):
    """The per-node protocol logic."""

    def __init__(self, rt_size_units: float = 1.0):
        super().__init__()
        self.rt_size_units = rt_size_units
        self.cell: GridCoord = (-1, -1)
        self.rt: Dict[Direction, Optional[int]] = {d: None for d in ALL_DIRECTIONS}
        self.rebroadcasts = 0

    # -- protocol ------------------------------------------------------------

    def on_start(self) -> None:
        net = self.medium.network
        self.cell = net.cell_of(self.node_id)
        # Step 2: direct entries from initially available information.
        # One pass over the neighbours against an adjacent-cell -> direction
        # map (instead of a per-neighbour direction scan); ties resolve to
        # the lowest node id, deterministically.
        adjacent = {d.step(self.cell): d for d in ALL_DIRECTIONS}
        best: Dict[Direction, int] = {}
        for nbr in net.neighbors(self.node_id):
            d = adjacent.get(net.cell_of(nbr))
            if d is not None and (d not in best or nbr < best[d]):
                best[d] = nbr
        for d, nbr in best.items():
            self.rt[d] = nbr
        # Step 3: announce.
        self.broadcast(RT_KIND, self._summary(), self.rt_size_units)

    def on_packet(self, packet: Packet) -> None:
        if packet.kind != RT_KIND:
            return
        sender_cell, filled = packet.payload
        if sender_cell != self.cell:
            return  # suppression at the cell boundary (property ii)
        changed = False
        for d in filled:
            if self.rt[d] is None:
                self.rt[d] = packet.src
                changed = True
        if changed:
            self.rebroadcasts += 1
            self.broadcast(RT_KIND, self._summary(), self.rt_size_units)

    def _summary(self) -> Tuple[GridCoord, FrozenSet[Direction]]:
        return (
            self.cell,
            frozenset(d for d, entry in self.rt.items() if entry is not None),
        )


@dataclass
class EmulationResult:
    """Outcome of one protocol run.

    Attributes
    ----------
    topology:
        The converged routing structure (query via
        :class:`EmulatedTopology`).
    setup_time:
        Simulation time at quiescence — property (iii) predicts it is
        proportional to the maximum intra-cell path length.
    messages:
        Radio transmissions used by the protocol.
    energy:
        Total energy drawn during setup.
    """

    topology: "EmulatedTopology"
    setup_time: float
    messages: int
    energy: float


class EmulatedTopology:
    """The converged product of the protocol: per-node routing tables.

    Provides the forwarding queries the transport layer and the tests
    need.  The tables are immutable in normal operation; the only
    mutation path is :meth:`repair`, the self-healing transport's
    on-demand rebuild around dead nodes.
    """

    def __init__(
        self, network: RealNetwork, tables: Dict[int, Dict[Direction, Optional[int]]]
    ):
        self.network = network
        self.tables = tables
        # liveness generation at the last repair of each (cell, direction);
        # throttles on-demand repairs to one per churn event
        self._repair_generation: Dict[Tuple[GridCoord, Direction], int] = {}

    def entry(self, node_id: int, direction: Direction) -> Optional[int]:
        """``RT_{node}[direction]``."""
        return self.tables[node_id][direction]

    def gateway_chain(
        self, node_id: int, direction: Direction
    ) -> Optional[List[int]]:
        """Follow ``RT[direction]`` pointers from ``node_id`` until the
        chain crosses into the adjacent cell.

        Returns the node-id path (starting at ``node_id``, ending at the
        first node inside the adjacent cell), or None if the table has no
        entry.  Raises :class:`RuntimeError` on a cycle — which the
        fill-only-NULL protocol can never produce; the check guards
        against hand-edited tables.
        """
        net = self.network
        start_cell = net.cell_of(node_id)
        target_cell = direction.step(start_cell)
        path = [node_id]
        seen = {node_id}
        current = node_id
        while True:
            nxt = self.tables[current][direction]
            if nxt is None:
                return None
            if nxt in seen:
                raise RuntimeError(
                    f"routing cycle at node {nxt} for direction {direction}"
                )
            seen.add(nxt)
            path.append(nxt)
            if net.cell_of(nxt) == target_cell:
                return path
            if net.cell_of(nxt) != start_cell:
                raise RuntimeError(
                    f"chain from {node_id} {direction.name} strayed into "
                    f"{net.cell_of(nxt)}"
                )
            current = nxt

    def repair(self, cell: GridCoord, direction: Direction) -> bool:
        """Rebuild ``RT[direction]`` for ``cell``'s alive members around
        dead nodes.

        Centralized stand-in for periodically re-running the emulation
        protocol, invoked on demand by the self-healing transport when a
        gateway-chain hop is found dead.  Mirrors the oracle construction:
        seeds are alive members with an alive one-hop neighbour in the
        adjacent cell (entry = lowest-id such neighbour, the protocol's
        own tie-break), then BFS inward with sorted iteration so the
        rebuilt chains are a pure function of the liveness state.
        Unreachable members get ``None``.  Returns True iff any entry
        changed; throttled per liveness generation.
        """
        net = self.network
        key = (cell, direction)
        gen = net.liveness_generation
        if self._repair_generation.get(key) == gen:
            return False
        self._repair_generation[key] = gen
        target = direction.step(cell)
        if not net.cells.contains_cell(target):
            return False
        members = net.members_of_cell(cell)  # alive members only
        member_set = set(members)
        new_entry: Dict[int, Optional[int]] = {}
        seeds: List[int] = []
        for m in members:
            cross = [n for n in net.neighbors(m) if net.cell_of(n) == target]
            if cross:
                new_entry[m] = min(cross)
                seeds.append(m)
        frontier = sorted(seeds)
        reached = set(frontier)
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for v in sorted(net.neighbors(u)):
                    if v in member_set and v not in reached:
                        reached.add(v)
                        new_entry[v] = u
                        nxt.append(v)
            frontier = nxt
        changed = False
        for m in members:
            new = new_entry.get(m)
            if self.tables[m][direction] != new:
                self.tables[m][direction] = new
                changed = True
        return changed

    def verify(self) -> List[str]:
        """Check the converged tables against the oracle.

        Returns human-readable problems (empty list = the protocol filled
        every satisfiable entry and every chain terminates correctly).
        """
        problems: List[str] = []
        oracle = oracle_reachable_directions(self.network)
        for node_id, table in self.tables.items():
            cell = self.network.cell_of(node_id)
            for d in ALL_DIRECTIONS:
                adjacent = d.step(cell)
                in_grid = self.network.cells.contains_cell(adjacent)
                reachable = (node_id, d) in oracle
                if table[d] is not None:
                    if not in_grid:
                        problems.append(
                            f"node {node_id}: entry {d.name} points off-grid"
                        )
                        continue
                    try:
                        chain = self.gateway_chain(node_id, d)
                    except RuntimeError as exc:
                        problems.append(str(exc))
                        continue
                    if chain is None:
                        problems.append(
                            f"node {node_id}: broken chain {d.name}"
                        )
                elif in_grid and reachable:
                    problems.append(
                        f"node {node_id}: missing reachable entry {d.name}"
                    )
        return problems


def oracle_reachable_directions(network: RealNetwork) -> Set[Tuple[int, Direction]]:
    """Centralized ground truth: the (node, direction) pairs for which an
    intra-cell multi-hop path to a node bordering the adjacent cell exists.

    A node can satisfy direction ``d`` iff its cell's induced subgraph
    connects it to some member with a direct link into the adjacent cell.
    """
    out: Set[Tuple[int, Direction]] = set()
    for cell in network.cells.cells():
        members = network.members_of_cell(cell)
        member_set = set(members)
        for d in ALL_DIRECTIONS:
            target = d.step(cell)
            if not network.cells.contains_cell(target):
                continue
            # seeds: members with a one-hop neighbour in the target cell
            seeds = [
                m
                for m in members
                if any(
                    network.cell_of(nbr) == target
                    for nbr in network.neighbors(m)
                )
            ]
            if not seeds:
                continue
            # intra-cell BFS from the seed set
            reached = set(seeds)
            frontier = list(seeds)
            while frontier:
                nxt: List[int] = []
                for u in frontier:
                    for v in network.neighbors(u):
                        if v in member_set and v not in reached:
                            reached.add(v)
                            nxt.append(v)
                frontier = nxt
            for m in reached:
                out.add((m, d))
    return out


def max_intra_cell_path_length(network: RealNetwork) -> int:
    """``max over cells of the eccentricity of the cell's induced subgraph``
    — the quantity property (iii) says bounds the setup latency."""
    worst = 0
    for cell in network.cells.cells():
        members = network.members_of_cell(cell)
        member_set = set(members)
        for src in members:
            # BFS depth within the cell
            depth = {src: 0}
            frontier = [src]
            while frontier:
                nxt: List[int] = []
                for u in frontier:
                    for v in network.neighbors(u):
                        if v in member_set and v not in depth:
                            depth[v] = depth[u] + 1
                            nxt.append(v)
                frontier = nxt
            worst = max(worst, max(depth.values()))
    return worst


def emulate_topology(
    network: RealNetwork,
    cost_model: Optional[CostModel] = None,
    loss_rate: float = 0.0,
    rng: "np.random.Generator | int | None" = None,
    rt_size_units: float = 1.0,
    rounds: int = 1,
) -> EmulationResult:
    """Run the topology-emulation protocol to convergence.

    ``rounds > 1`` re-executes the protocol periodically (the paper:
    *"since new nodes can be added ... the above protocol should execute
    periodically"*) — useful after churn; tables are rebuilt from scratch
    each round.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    last: Optional[EmulationResult] = None
    for _ in range(rounds):
        sim = Simulator()
        medium = WirelessMedium(
            sim, network, cost_model=cost_model, loss_rate=loss_rate, rng=rng
        )
        host = ProcessHost(sim, medium)
        host.add_all(lambda nid: TopologyEmulationProcess(rt_size_units))
        host.start()
        sim.run_until_quiet()
        tables = {
            nid: dict(proc.rt)  # type: ignore[attr-defined]
            for nid, proc in host.processes.items()
        }
        last = EmulationResult(
            topology=EmulatedTopology(network, tables),
            setup_time=sim.now,
            messages=medium.stats.transmissions,
            energy=medium.ledger.total,
        )
    assert last is not None
    return last
