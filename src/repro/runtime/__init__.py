"""Runtime system: the Section 5 protocols and the deployed stack.

Implements the two functionalities the paper's runtime is responsible
for — *"emulating the grid topology on the arbitrary network deployment,
and binding virtual processes of the synthesized program to real nodes of
the underlying network"* — plus the transport layer that forwards
cell-addressed messages over the emulated grid and the maintenance
utilities for churn and recovery.
"""

from .binding import (
    Binding,
    BindingResult,
    LeaderElectionProcess,
    bind_processes,
    distance_to_center_metric,
    oracle_binding,
    residual_energy_metric,
)
from .clustered_mesh import LeaderMesh, MeshResult, build_leader_mesh
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultReport,
    HealingConfig,
    plan_chaos,
    plan_leader_storm,
)
from .maintenance import (
    RecoveryReport,
    kill_leaders,
    kill_random_nodes,
    recover,
    rotate_leaders,
)
from .query import DeployedQueryResult, run_deployed_query
from .routing import (
    CorruptedFrame,
    TransportEnvelope,
    TransportProcess,
    next_direction,
    trace_route,
)
from .stack import DeployedRunResult, DeployedStack, SetupReport, deploy
from .topology_emulation import (
    EmulatedTopology,
    EmulationResult,
    TopologyEmulationProcess,
    emulate_topology,
    max_intra_cell_path_length,
    oracle_reachable_directions,
)
from .wire import (
    WIRE_VERSION,
    WireDecodeError,
    WireEncodeError,
    WireError,
    decode_ack,
    decode_envelope,
    encode_ack,
    encode_envelope,
    register_payload_codec,
)

__all__ = [
    "Binding",
    "BindingResult",
    "CorruptedFrame",
    "DeployedQueryResult",
    "DeployedRunResult",
    "DeployedStack",
    "EmulatedTopology",
    "EmulationResult",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "HealingConfig",
    "LeaderElectionProcess",
    "LeaderMesh",
    "MeshResult",
    "RecoveryReport",
    "SetupReport",
    "TopologyEmulationProcess",
    "TransportEnvelope",
    "TransportProcess",
    "WIRE_VERSION",
    "WireDecodeError",
    "WireEncodeError",
    "WireError",
    "bind_processes",
    "build_leader_mesh",
    "decode_ack",
    "decode_envelope",
    "deploy",
    "distance_to_center_metric",
    "emulate_topology",
    "encode_ack",
    "encode_envelope",
    "kill_leaders",
    "kill_random_nodes",
    "max_intra_cell_path_length",
    "next_direction",
    "oracle_binding",
    "oracle_reachable_directions",
    "plan_chaos",
    "plan_leader_storm",
    "recover",
    "register_payload_codec",
    "residual_energy_metric",
    "rotate_leaders",
    "run_deployed_query",
    "trace_route",
]
