#!/usr/bin/env python3
"""Event-driven target tracking with probabilistic activation analysis.

Section 4.1 notes that the static task-graph model fits periodic sampling,
and sketches the extension for event-driven applications like target
tracking: *"only the sensor nodes in the vicinity of the target (event)
perform the sampling"*, with activation expressed probabilistically for
design-time analysis.

This example runs several tracking rounds: targets move across the
terrain, only PoCs within the detection vicinity activate, and the
synthesized reduction (unchanged!) counts and delineates the activated
area at a fraction of the all-active cost.  The measured per-round energy
is compared against the closed-form expectation.

Run:  python examples/target_tracking.py
"""

import numpy as np

from repro.core import (
    CountAggregation,
    EventDrivenAggregation,
    VirtualArchitecture,
    expected_quadtree_cost,
    simulate_event_activations,
)
from repro.apps import render_feature_map

SIDE = 16
ROUNDS = 6
VICINITY = 2.0  # detection radius in grid cells


def main() -> None:
    va = VirtualArchitecture(SIDE)
    rng = np.random.default_rng(7)

    # design-time: expected cost as a function of activation probability
    print("expected per-round energy vs activation probability (16x16):")
    for p in (0.01, 0.05, 0.15, 0.5, 1.0):
        exp = expected_quadtree_cost(SIDE, p)
        print(f"  p={p:<5} expected energy {exp.expected_energy:8.1f}  "
              f"messages {exp.expected_messages:6.1f}")
    all_active = expected_quadtree_cost(SIDE, 1.0).expected_energy
    print(f"(always-on cost: {all_active:.0f})\n")

    # runtime: two targets wander, vicinities activate
    total_energy = 0.0
    for round_no in range(1, ROUNDS + 1):
        active = simulate_event_activations(
            SIDE, n_events=2, vicinity_radius=VICINITY, rng=rng
        )
        agg = EventDrivenAggregation(
            CountAggregation(lambda c: True), active=lambda c: c in active
        )
        result = va.execute(agg, charge_compute=False)
        total_energy += result.ledger.total
        detected = result.root_payload or 0
        print(
            f"round {round_no}: {len(active):3d} PoCs in vicinity, "
            f"in-network count {detected:3d}, energy {result.ledger.total:6.1f}"
        )
        if round_no == ROUNDS:
            feat = np.zeros((SIDE, SIDE), dtype=bool)
            for (x, y) in active:
                feat[y, x] = True
            print("\nfinal round's activation map:")
            print(render_feature_map(feat))

    mean = total_energy / ROUNDS
    p_effective = np.mean(
        [len(simulate_event_activations(SIDE, 2, VICINITY, rng=s)) / SIDE**2
         for s in range(20)]
    )
    exp = expected_quadtree_cost(SIDE, float(p_effective))
    print(
        f"\nmean measured energy/round: {mean:.1f}  "
        f"(expectation at p≈{p_effective:.3f}: {exp.expected_energy:.1f}; "
        f"always-on: {all_active:.0f} — "
        f"{all_active / max(mean, 1e-9):.1f}x saved by event-driven operation)"
    )
    print(
        "note: vicinity activations cluster spatially, so whole quadrants "
        "stay silent\nand the measured cost beats the independent-Bernoulli "
        "expectation at the same p."
    )


if __name__ == "__main__":
    main()
