#!/usr/bin/env python3
"""Walkthrough of Sections 3–4: regenerate the paper's Figures 2, 3, and 4.

Prints, for the paper's 4x4 example:
  * the quad-tree task graph with its Morton labels (Figure 2),
  * the constraint-checked recursive-quadrant mapping (Figure 3),
  * the synthesized condition-action program (Figure 4),
and then traces the rule firings of one node through a round, showing the
event-driven semantics (incremental merging, the self message, level
advancement) in action.

Run:  python examples/synthesis_walkthrough.py
"""

from repro.core import (
    CountAggregation,
    HierarchicalGroups,
    OrientedGrid,
    build_quadtree,
    check_all_constraints,
    morton_encode,
    quadtree_ascii,
    recursive_quadrant_mapping,
    synthesize_quadtree_program,
)
from repro.core.mapping import mapping_table
from repro.core.program import Message
from repro.core.synthesis import MGRAPH


def main() -> None:
    grid = OrientedGrid(4)
    groups = HierarchicalGroups(grid)

    # ---- Figure 2 ----------------------------------------------------------
    print("=" * 64)
    print("Figure 2: quad-tree representation of the algorithm")
    print("=" * 64)
    tg = build_quadtree(grid)
    print(quadtree_ascii(tg))

    # ---- Figure 3 ----------------------------------------------------------
    print()
    print("=" * 64)
    print("Figure 3: example mapping (grid locations by Morton label)")
    print("=" * 64)
    for y in range(4):
        print("  ".join(f"{morton_encode((x, y)):2d}" for x in range(4)))
    mapping = recursive_quadrant_mapping(tg, groups)
    check_all_constraints(mapping)
    print("\ntask placement (coverage + spatial correlation verified):")
    print(mapping_table(mapping))

    # ---- Figure 4 ----------------------------------------------------------
    print()
    print("=" * 64)
    print("Figure 4: synthesized program specification")
    print("=" * 64)
    spec = synthesize_quadtree_program(groups, CountAggregation(lambda c: True))
    print(spec.render_figure4())

    # ---- rule-firing trace ---------------------------------------------------
    print("=" * 64)
    print("Execution trace of node (0,0) — leader at levels 0, 1, 2")
    print("=" * 64)
    program = spec.program_for((0, 0))

    def show(step, effects):
        fired = ", ".join(program.firing_log[len_before:])
        print(f"{step:<34} rules fired: [{fired}]")
        for e in effects:
            if e.kind == "send":
                print(f"    -> send level-{e.message.level} summary to {e.destination}")
            elif e.kind == "exfiltrate":
                print(f"    -> EXFILTRATE result: {e.payload}")

    len_before = 0
    effects = program.start()
    show("start (sense + self-merge)", effects)

    deliveries = [
        ((1, 0), 1, 1), ((0, 1), 1, 1), ((1, 1), 1, 1),  # level-1 children
        ((2, 0), 2, 4), ((0, 2), 2, 4), ((2, 2), 2, 4),  # level-2 children
    ]
    for sender, level, payload in deliveries:
        len_before = len(program.firing_log)
        effects = program.deliver(
            Message(MGRAPH, sender, payload=payload, level=level)
        )
        show(f"receive mGraph(level={level}) from {sender}", effects)

    print(f"\nfinal state: recLevel={program.state['recLevel']}, "
          f"exfiltrated={program.state['exfiltrated']} (expected 16)")


if __name__ == "__main__":
    main()
