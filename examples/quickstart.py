#!/usr/bin/env python3
"""Quickstart: the paper's methodology in one page.

Design a topographic-query application against the virtual architecture,
estimate its performance from the cost model, run it on the virtual grid,
and check the answer against the centralized oracle — no deployment, no
protocols; pure design-time work (the top half of the paper's Figure 1).

Run:  python examples/quickstart.py
"""

from repro import TopographicQueryApp, VirtualArchitecture
from repro.apps import GaussianBlobField
from repro.core.analysis import estimate_quadtree, quadtree_step_count

SIDE = 16  # sqrt(N): one virtual node per point of coverage


def main() -> None:
    # 1. The virtual architecture: oriented grid + hierarchical groups +
    #    the paper's uniform cost model (Section 3.2).
    va = VirtualArchitecture(SIDE)
    print(f"virtual architecture: {va}")

    # 2. The monitored phenomenon: two hot spots on the terrain.
    field = GaussianBlobField(
        [(0.3, 0.3, 0.10, 1.0), (0.72, 0.68, 0.07, 1.0)]
    )
    app = TopographicQueryApp(va, field, threshold=0.5)
    print("\nfeature map ('#' = reading above threshold):")
    print(app.ascii_feature_map())

    # 3. Rapid first-order estimation before running anything (Section 2).
    est = estimate_quadtree(SIDE)
    print(
        f"\nanalytic estimate: {quadtree_step_count(SIDE)} hop-steps, "
        f"{est.total_energy:.0f} energy units (unit-size messages)"
    )

    # 4. Synthesize the Figure 4 program and execute one round.
    report = app.run_virtual()
    print(
        f"\nin-network result: {report.regions} homogeneous regions, "
        f"areas {report.areas}"
    )
    print(
        f"measured: latency {report.performance.latency:.1f}, "
        f"total energy {report.performance.total_energy:.1f}, "
        f"{report.performance.messages} messages"
    )

    # 5. Cross-check against the centralized oracle.
    print(
        f"oracle: {report.expected_regions} regions — "
        f"{'MATCH' if report.correct else 'MISMATCH'}"
    )


if __name__ == "__main__":
    main()
