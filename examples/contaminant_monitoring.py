#!/usr/bin/env python3
"""Contaminant monitoring on a physically deployed network.

The full bottom half of the paper's Figure 1: 300 sensor nodes are
scattered over a 200m x 200m terrain; the runtime protocols of Section 5
emulate an 8x8 virtual grid on the deployment (topology emulation + leader
binding); then the synthesized region-labeling program executes on the
elected leaders to delineate two contaminant plumes, and distributed-
storage queries answer follow-up questions cheaply.

Run:  python examples/contaminant_monitoring.py
"""

import numpy as np

from repro import VirtualArchitecture
from repro.apps import (
    DistributedStorage,
    GaussianBlobField,
    count_regions,
    count_regions_exact,
    feature_area_total,
    feature_matrix_aggregation,
    largest_region,
    sample_grid,
    threshold_features,
)
from repro.deployment import (
    CellGrid,
    Terrain,
    build_network,
    ensure_coverage,
    uniform_random,
)
from repro.runtime import deploy

SIDE = 8          # virtual grid (points of coverage)
N_NODES = 300     # physical deployment size
TERRAIN = 200.0   # metres


def main() -> None:
    rng = np.random.default_rng(2004)

    # --- deployment -------------------------------------------------------
    terrain = Terrain(TERRAIN)
    cells = CellGrid(terrain, SIDE)
    positions = ensure_coverage(uniform_random(N_NODES, terrain, rng), cells, rng)
    network = build_network(positions, cells, tx_range=cells.cell_side * 2.3)
    print(
        f"deployed {len(network)} nodes over {TERRAIN:.0f}m terrain, "
        f"{SIDE}x{SIDE} cells, mean degree {network.average_degree():.1f}"
    )
    problems = network.validate_protocol_preconditions()
    print(f"Section 5 preconditions: {'OK' if not problems else problems}")

    # --- runtime setup: Section 5 protocols -------------------------------
    stack = deploy(network)
    print(
        f"setup: {stack.setup.emulation.messages} emulation msgs "
        f"(t={stack.setup.emulation.setup_time:.1f}), "
        f"{stack.setup.binding.messages} election msgs "
        f"(t={stack.setup.binding.setup_time:.1f})"
    )
    assert stack.topology.verify() == []
    assert stack.binding.verify() == []

    # --- the phenomenon: two contaminant plumes ---------------------------
    plumes = GaussianBlobField(
        [(0.25, 0.35, 0.12, 1.0), (0.7, 0.65, 0.09, 0.8)]
    )
    readings = sample_grid(plumes, SIDE)
    feature = threshold_features(readings, 0.4)
    print("\ncontamination map ('#' above threshold):")
    for y in range(SIDE):
        print("".join("#" if feature[y, x] else "." for x in range(SIDE)))

    # --- in-network labeling, stopping at level-2 storage leaders ----------
    va = VirtualArchitecture(SIDE)
    spec = va.synthesize(feature_matrix_aggregation(feature), max_level=2)
    run = stack.run_application(spec)
    print(
        f"\nlabeling round: {run.transmissions} radio transmissions, "
        f"latency {run.latency:.1f}, energy {run.ledger.total:.1f}, "
        f"{run.drops} drops"
    )
    storage = DistributedStorage.from_execution(va.grid, 2, _as_execution(run, va))

    # --- queries against the stored summaries -----------------------------
    count = count_regions_exact(storage)
    area = feature_area_total(storage)
    biggest = largest_region(storage)
    print("\nqueries over distributed storage:")
    print(f"  number of plumes:    {count.value} "
          f"(cost {count.energy:.0f} energy, truth {count_regions(feature)})")
    print(f"  contaminated area:   {area.value} cells (cost {area.energy:.0f})")
    print(f"  largest plume:       {biggest.value} cells (cost {biggest.energy:.0f})")
    assert count.value == count_regions(feature)


def _as_execution(run, va):
    """Adapt a deployed run to the storage constructor's interface."""
    from repro.core.executor import ExecutionResult

    return ExecutionResult(
        exfiltrated=run.exfiltrated,
        ledger=run.ledger,
        latency=run.latency,
        messages=run.transmissions,
        data_units=0.0,
        hop_units=0.0,
        events=0,
    )


if __name__ == "__main__":
    main()
