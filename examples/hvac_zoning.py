#!/usr/bin/env python3
"""HVAC zone analysis: algorithm selection from the cost model.

The paper's Section 2 design-flow example, played out on an HVAC scenario:
a building's temperature field has a diagonal gradient plus local heat
sources; the facilities engineer wants the over-temperature zones labelled
every control cycle, and must choose between in-network divide-and-conquer
merging and centralized collection.  The virtual architecture's cost model
makes the choice *before* deployment — then the measured runs confirm it.

Run:  python examples/hvac_zoning.py
"""

from repro import TopographicQueryApp, VirtualArchitecture
from repro.apps import (
    CompositeField,
    GaussianBlobField,
    GradientField,
    compare_designs,
    run_centralized,
)
from repro.core.analysis import estimate_centralized, estimate_quadtree


def building_field() -> CompositeField:
    """Diagonal ambient gradient + two equipment heat islands."""
    return CompositeField(
        [
            GradientField(18.0, 24.0),  # degrees C across the floor
            GaussianBlobField(
                [(0.3, 0.6, 0.08, 6.0), (0.75, 0.25, 0.06, 8.0)]
            ),
        ]
    )


def main() -> None:
    threshold = 24.5  # alarm threshold, degrees C

    print("=== design-time choice (analytic, before deployment) ===")
    print(f"{'floor grid':>12} {'dnc steps':>10} {'central steps':>14} "
          f"{'dnc energy':>11} {'central energy':>15}")
    for side in (8, 16, 32):
        q = estimate_quadtree(side)
        c = estimate_centralized(side)
        print(f"{side:>10}^2 {q.latency_steps:>10.0f} {c.latency_steps:>14.0f} "
              f"{q.total_energy:>11.0f} {c.total_energy:>15.0f}")
    print("-> divide-and-conquer wins both metrics at every floor size;\n"
          "   choose the quad-tree algorithm (the paper's Section 2 call).\n")

    print("=== measured on the sampled building (per control cycle) ===")
    for side in (8, 16, 32):
        va = VirtualArchitecture(side)
        app = TopographicQueryApp(va, building_field(), threshold)
        report = app.run_virtual()
        row = compare_designs(app.feature_matrix)
        print(
            f"{side:>3}x{side}: {report.regions} hot zones "
            f"(correct={report.correct}); dnc energy {row['dnc_energy']:.0f} "
            f"vs centralized {row['central_energy']:.0f} "
            f"({row['energy_ratio']:.1f}x), hot-spot load "
            f"{row['dnc_max_node']:.0f} vs {row['central_max_node']:.0f}"
        )

    # show the zones for the 16x16 floor
    va = VirtualArchitecture(16)
    app = TopographicQueryApp(va, building_field(), threshold)
    print("\n16x16 over-temperature map ('#' needs cooling):")
    print(app.ascii_feature_map())
    report = app.run_virtual()
    print(f"zones: {report.regions}, areas {report.areas}")


if __name__ == "__main__":
    main()
