#!/usr/bin/env python3
"""Network self-maintenance: residual-energy queries and leader rotation.

Section 3.1: "Querying the properties of sensor nodes such as residual
energy levels is useful for resource management, dynamic retasking,
preventive maintenance of sensor fields."  Section 5.2 suggests rotating
the leader role by residual energy.

This example runs the deployed stack for several application rounds.  The
same synthesized reduction skeleton answers the maintenance queries
(minimum / total residual energy in-network via the Min/Sum aggregations);
between rounds the leaders rotate to the members with the fullest
batteries, spreading the drain.  Finally, it injects leader failures and
shows the recovery path.

Run:  python examples/network_maintenance.py
"""

import numpy as np

from repro import VirtualArchitecture
from repro.core import Aggregation, SumAggregation
from repro.deployment import (
    CellGrid,
    Terrain,
    build_network,
    ensure_coverage,
    uniform_random,
)
from repro.runtime import deploy, kill_leaders, recover, rotate_leaders

SIDE = 4
ROUNDS = 4


class MinResidualAggregation(Aggregation):
    """In-network minimum of per-cell leader residual energy.

    The feature of interest is a *node property* (Section 3.1), not a
    phenomenon reading: each virtual node reports the residual energy of
    the physical node currently bound to it.
    """

    def __init__(self, residual_of):
        self.residual_of = residual_of

    def local(self, coord):
        return float(self.residual_of(coord))

    def make_accumulator(self, corner, level):
        return [float("inf")]

    def merge(self, accumulator, payload):
        accumulator[0] = min(accumulator[0], payload)

    def finalize(self, accumulator):
        if isinstance(accumulator, list):
            return accumulator[0]
        return accumulator


def main() -> None:
    rng = np.random.default_rng(99)
    terrain = Terrain(100.0)
    cells = CellGrid(terrain, SIDE)
    positions = ensure_coverage(uniform_random(150, terrain, rng), cells, rng)
    # batteries sized so the drain is visible but nothing dies mid-demo
    # (protocol re-execution is the dominant expense: each rotation re-runs
    # topology emulation + election over the whole network)
    network = build_network(
        positions, cells, tx_range=cells.cell_side * 2.3, initial_energy=25_000.0
    )
    stack = deploy(network)
    va = VirtualArchitecture(SIDE)

    print(f"{len(network)} nodes, {SIDE}x{SIDE} cells, battery 25000 units each\n")
    for round_no in range(1, ROUNDS + 1):
        binding = stack.binding

        def residual_of(coord):
            return network.node(binding.leader_of(coord)).residual_energy

        # maintenance query 1: weakest bound leader (in-network min)
        run_min = stack.run_application(
            va.synthesize(MinResidualAggregation(residual_of))
        )
        # maintenance query 2: total residual across bound leaders
        run_sum = stack.run_application(
            va.synthesize(SumAggregation(residual_of))
        )
        print(
            f"round {round_no}: weakest leader {run_min.root_payload:.0f} units, "
            f"leader total {run_sum.root_payload:.0f}, "
            f"alive nodes {len(network.alive_ids())}"
        )

        # rotate leadership toward full batteries (Section 5.2 suggestion)
        stack = rotate_leaders(network)
        rotated = sum(
            1
            for cell in network.cells.cells()
            if stack.binding.leaders[cell] != binding.leaders[cell]
        )
        print(f"          rotated leaders in {rotated}/{SIDE * SIDE} cells")

    # fault injection: lose every leader at once
    print("\ninjecting failure of all current leaders...")
    killed = kill_leaders(network, stack.binding)
    report = recover(network, previous=stack)
    if report.recovered:
        print(
            f"recovered: re-elected {report.reelected_cells} cells at a cost "
            f"of {report.setup_messages} protocol messages"
        )
        check = report.stack.run_application(
            va.synthesize(SumAggregation(lambda c: 1.0))
        )
        if check.exfiltrated:
            print(f"post-recovery sanity reduction: {check.root_payload:.0f} "
                  f"(expected {SIDE * SIDE})")
        else:
            print(f"post-recovery round stalled ({check.drops} drops) — "
                  "batteries exhausted; network end of life")
    else:
        print(f"recovery impossible: {report.precondition_problems}")


if __name__ == "__main__":
    main()
