#!/usr/bin/env python3
"""Streaming in-network processing as a Kahn process network.

Figure 1 lists process networks among the candidate models of computation.
This example expresses a *continuous* monitoring pipeline — the paper's
"application essentially executes in an infinite loop" — as a KPN mapped
onto the virtual grid:

    4 quadrant samplers  ->  merger (running region count)  ->  alarm sink

Each round, every quadrant sampler pushes its block's feature count; the
merger maintains a running total and forwards it; the sink raises an alarm
whenever the total crosses a threshold.  Token traffic is charged per hop
over the grid, so the steady-state cost per round is measurable the same
way as the one-shot reductions.

Run:  python examples/streaming_pipeline.py
"""

import numpy as np

from repro.core import OrientedGrid
from repro.core.process_network import ProcessNetwork

SIDE = 8
ROUNDS = 10
ALARM_THRESHOLD = 18


def main() -> None:
    rng = np.random.default_rng(42)
    grid = OrientedGrid(SIDE)
    net = ProcessNetwork(grid=grid)

    # channels: one per quadrant into the merger, one merger -> sink
    quadrants = {
        "nw": (0, 0),
        "ne": (SIDE // 2, 0),
        "sw": (0, SIDE // 2),
        "se": (SIDE // 2, SIDE // 2),
    }
    for name in quadrants:
        net.add_channel(f"q_{name}", capacity=2)
    net.add_channel("totals", capacity=2)

    # pre-draw the per-round activity of each quadrant (the phenomenon)
    activity = {
        name: [int(rng.integers(0, (SIDE // 2) ** 2 // 2)) for _ in range(ROUNDS)]
        for name in quadrants
    }

    def make_sampler(name):
        def sampler():
            ch = net.channel(f"q_{name}")
            for round_no in range(ROUNDS):
                yield ("compute", 1.0)  # threshold the block readings
                yield ("write", ch, activity[name][round_no])

        return sampler

    def merger():
        out = net.channel("totals")
        channels = [net.channel(f"q_{n}") for n in quadrants]
        for _ in range(ROUNDS):
            total = 0
            for ch in channels:
                v = yield ("read", ch)
                total += v
            yield ("compute", 4.0)
            yield ("write", out, total)

    alarms = []

    def sink():
        ch = net.channel("totals")
        for round_no in range(ROUNDS):
            total = yield ("read", ch)
            if total >= ALARM_THRESHOLD:
                alarms.append((round_no, total))

    for name, corner in quadrants.items():
        net.add_process(f"sampler_{name}", make_sampler(name), node=corner)
    net.add_process("merger", merger, node=(0, 0))
    net.add_process("sink", sink, node=(0, 0))
    for name in quadrants:
        net.connect(f"q_{name}", f"sampler_{name}", "merger")
    net.connect("totals", "merger", "sink")

    times = net.run()
    print(f"{ROUNDS} monitoring rounds streamed through the pipeline")
    print(f"per-round quadrant activity (first 3 rounds): "
          f"{[{n: activity[n][r] for n in quadrants} for r in range(3)]}")
    print(f"\nalarms raised (threshold {ALARM_THRESHOLD}): {alarms}")
    print(f"pipeline finish time: {max(times.values()):.1f}")
    print(f"total energy: {net.ledger.total:.1f} "
          f"({net.ledger.by_category()})")
    per_round = net.ledger.total / ROUNDS
    print(f"steady-state cost: {per_round:.1f} energy units per round")


if __name__ == "__main__":
    main()
